//! Structured representation of the RV32IMAF instruction set.

use crate::reg::{Fpr, Gpr};

/// Conditional branch comparison, funct3 of the `BRANCH` opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq` — branch if equal.
    Eq,
    /// `bne` — branch if not equal.
    Ne,
    /// `blt` — branch if less than (signed).
    Lt,
    /// `bge` — branch if greater or equal (signed).
    Ge,
    /// `bltu` — branch if less than (unsigned).
    Ltu,
    /// `bgeu` — branch if greater or equal (unsigned).
    Geu,
}

impl BranchOp {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [BranchOp; 6] = [
        BranchOp::Eq,
        BranchOp::Ne,
        BranchOp::Lt,
        BranchOp::Ge,
        BranchOp::Ltu,
        BranchOp::Geu,
    ];

    pub(crate) fn funct3(self) -> u32 {
        match self {
            BranchOp::Eq => 0b000,
            BranchOp::Ne => 0b001,
            BranchOp::Lt => 0b100,
            BranchOp::Ge => 0b101,
            BranchOp::Ltu => 0b110,
            BranchOp::Geu => 0b111,
        }
    }

    /// Evaluates the branch condition on two register values.
    pub fn taken(self, a: u32, b: u32) -> bool {
        match self {
            BranchOp::Eq => a == b,
            BranchOp::Ne => a != b,
            BranchOp::Lt => (a as i32) < (b as i32),
            BranchOp::Ge => (a as i32) >= (b as i32),
            BranchOp::Ltu => a < b,
            BranchOp::Geu => a >= b,
        }
    }
}

/// Width/signedness of an integer load, funct3 of the `LOAD` opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadWidth {
    /// `lb` — load byte, sign-extended.
    B,
    /// `lh` — load halfword, sign-extended.
    H,
    /// `lw` — load word.
    W,
    /// `lbu` — load byte, zero-extended.
    Bu,
    /// `lhu` — load halfword, zero-extended.
    Hu,
}

impl LoadWidth {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [LoadWidth; 5] = [
        LoadWidth::B,
        LoadWidth::H,
        LoadWidth::W,
        LoadWidth::Bu,
        LoadWidth::Hu,
    ];

    pub(crate) fn funct3(self) -> u32 {
        match self {
            LoadWidth::B => 0b000,
            LoadWidth::H => 0b001,
            LoadWidth::W => 0b010,
            LoadWidth::Bu => 0b100,
            LoadWidth::Hu => 0b101,
        }
    }

    /// Number of bytes transferred.
    pub fn bytes(self) -> u32 {
        match self {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W => 4,
        }
    }
}

/// Width of an integer store, funct3 of the `STORE` opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreWidth {
    /// `sb` — store byte.
    B,
    /// `sh` — store halfword.
    H,
    /// `sw` — store word.
    W,
}

impl StoreWidth {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [StoreWidth; 3] = [StoreWidth::B, StoreWidth::H, StoreWidth::W];

    pub(crate) fn funct3(self) -> u32 {
        match self {
            StoreWidth::B => 0b000,
            StoreWidth::H => 0b001,
            StoreWidth::W => 0b010,
        }
    }

    /// Number of bytes transferred.
    pub fn bytes(self) -> u32 {
        match self {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
        }
    }
}

/// Register-immediate ALU operation (`OP-IMM` opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpImmOp {
    /// `addi`
    Addi,
    /// `slti` — set if less than immediate (signed).
    Slti,
    /// `sltiu`
    Sltiu,
    /// `xori`
    Xori,
    /// `ori`
    Ori,
    /// `andi`
    Andi,
    /// `slli` — shift amount in the low 5 immediate bits.
    Slli,
    /// `srli`
    Srli,
    /// `srai`
    Srai,
}

impl OpImmOp {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [OpImmOp; 9] = [
        OpImmOp::Addi,
        OpImmOp::Slti,
        OpImmOp::Sltiu,
        OpImmOp::Xori,
        OpImmOp::Ori,
        OpImmOp::Andi,
        OpImmOp::Slli,
        OpImmOp::Srli,
        OpImmOp::Srai,
    ];

    /// Whether this is a shift (immediate restricted to 0..32).
    pub fn is_shift(self) -> bool {
        matches!(self, OpImmOp::Slli | OpImmOp::Srli | OpImmOp::Srai)
    }

    /// Evaluates the operation.
    pub fn eval(self, a: u32, imm: i32) -> u32 {
        let b = imm as u32;
        match self {
            OpImmOp::Addi => a.wrapping_add(b),
            OpImmOp::Slti => u32::from((a as i32) < imm),
            OpImmOp::Sltiu => u32::from(a < b),
            OpImmOp::Xori => a ^ b,
            OpImmOp::Ori => a | b,
            OpImmOp::Andi => a & b,
            OpImmOp::Slli => a.wrapping_shl(b & 0x1f),
            OpImmOp::Srli => a.wrapping_shr(b & 0x1f),
            OpImmOp::Srai => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
        }
    }
}

/// Register-register ALU operation (`OP` opcode), including the M extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `sll`
    Sll,
    /// `slt`
    Slt,
    /// `sltu`
    Sltu,
    /// `xor`
    Xor,
    /// `srl`
    Srl,
    /// `sra`
    Sra,
    /// `or`
    Or,
    /// `and`
    And,
    /// `mul` (M extension)
    Mul,
    /// `mulh`
    Mulh,
    /// `mulhsu`
    Mulhsu,
    /// `mulhu`
    Mulhu,
    /// `div`
    Div,
    /// `divu`
    Divu,
    /// `rem`
    Rem,
    /// `remu`
    Remu,
}

impl OpOp {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [OpOp; 18] = [
        OpOp::Add,
        OpOp::Sub,
        OpOp::Sll,
        OpOp::Slt,
        OpOp::Sltu,
        OpOp::Xor,
        OpOp::Srl,
        OpOp::Sra,
        OpOp::Or,
        OpOp::And,
        OpOp::Mul,
        OpOp::Mulh,
        OpOp::Mulhsu,
        OpOp::Mulhu,
        OpOp::Div,
        OpOp::Divu,
        OpOp::Rem,
        OpOp::Remu,
    ];

    /// Whether this operation comes from the M extension.
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            OpOp::Mul
                | OpOp::Mulh
                | OpOp::Mulhsu
                | OpOp::Mulhu
                | OpOp::Div
                | OpOp::Divu
                | OpOp::Rem
                | OpOp::Remu
        )
    }

    /// Evaluates the operation with RISC-V semantics (including the
    /// divide-by-zero and overflow conventions of the M extension).
    pub fn eval(self, a: u32, b: u32) -> u32 {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            OpOp::Add => a.wrapping_add(b),
            OpOp::Sub => a.wrapping_sub(b),
            OpOp::Sll => a.wrapping_shl(b & 0x1f),
            OpOp::Slt => u32::from(sa < sb),
            OpOp::Sltu => u32::from(a < b),
            OpOp::Xor => a ^ b,
            OpOp::Srl => a.wrapping_shr(b & 0x1f),
            OpOp::Sra => sa.wrapping_shr(b & 0x1f) as u32,
            OpOp::Or => a | b,
            OpOp::And => a & b,
            OpOp::Mul => a.wrapping_mul(b),
            OpOp::Mulh => (((sa as i64) * (sb as i64)) >> 32) as u32,
            OpOp::Mulhsu => (((sa as i64) * (b as i64)) >> 32) as u32,
            OpOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            OpOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if sa == i32::MIN && sb == -1 {
                    a
                } else {
                    (sa / sb) as u32
                }
            }
            OpOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            OpOp::Rem => {
                if b == 0 {
                    a
                } else if sa == i32::MIN && sb == -1 {
                    0
                } else {
                    (sa % sb) as u32
                }
            }
            OpOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

/// Atomic memory operation (`AMO` opcode, A extension, 32-bit width).
///
/// HammerBlade executes these remotely at the cache banks, providing
/// chip-wide synchronization primitives without coherence hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// `amoswap.w`
    Swap,
    /// `amoadd.w`
    Add,
    /// `amoxor.w`
    Xor,
    /// `amoand.w`
    And,
    /// `amoor.w`
    Or,
    /// `amomin.w` (signed)
    Min,
    /// `amomax.w` (signed)
    Max,
    /// `amominu.w`
    Minu,
    /// `amomaxu.w`
    Maxu,
}

impl AmoOp {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [AmoOp; 9] = [
        AmoOp::Swap,
        AmoOp::Add,
        AmoOp::Xor,
        AmoOp::And,
        AmoOp::Or,
        AmoOp::Min,
        AmoOp::Max,
        AmoOp::Minu,
        AmoOp::Maxu,
    ];

    pub(crate) fn funct5(self) -> u32 {
        match self {
            AmoOp::Swap => 0b00001,
            AmoOp::Add => 0b00000,
            AmoOp::Xor => 0b00100,
            AmoOp::And => 0b01100,
            AmoOp::Or => 0b01000,
            AmoOp::Min => 0b10000,
            AmoOp::Max => 0b10100,
            AmoOp::Minu => 0b11000,
            AmoOp::Maxu => 0b11100,
        }
    }

    /// Computes the new memory value from the old value and the operand.
    /// The AMO also returns the *old* value to the issuing core.
    pub fn apply(self, old: u32, operand: u32) -> u32 {
        match self {
            AmoOp::Swap => operand,
            AmoOp::Add => old.wrapping_add(operand),
            AmoOp::Xor => old ^ operand,
            AmoOp::And => old & operand,
            AmoOp::Or => old | operand,
            AmoOp::Min => (old as i32).min(operand as i32) as u32,
            AmoOp::Max => (old as i32).max(operand as i32) as u32,
            AmoOp::Minu => old.min(operand),
            AmoOp::Maxu => old.max(operand),
        }
    }
}

/// Two-operand floating-point computation (`OP-FP` opcode, F extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `fadd.s`
    Add,
    /// `fsub.s`
    Sub,
    /// `fmul.s`
    Mul,
    /// `fdiv.s`
    Div,
    /// `fsqrt.s` (rs2 ignored)
    Sqrt,
    /// `fsgnj.s`
    Sgnj,
    /// `fsgnjn.s`
    Sgnjn,
    /// `fsgnjx.s`
    Sgnjx,
    /// `fmin.s`
    Min,
    /// `fmax.s`
    Max,
}

impl FpOp {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [FpOp; 10] = [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::Sqrt,
        FpOp::Sgnj,
        FpOp::Sgnjn,
        FpOp::Sgnjx,
        FpOp::Min,
        FpOp::Max,
    ];

    /// Evaluates the operation on raw f32 bit patterns.
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            FpOp::Add => a + b,
            FpOp::Sub => a - b,
            FpOp::Mul => a * b,
            FpOp::Div => a / b,
            FpOp::Sqrt => a.sqrt(),
            FpOp::Sgnj => f32::from_bits((a.to_bits() & 0x7fff_ffff) | (b.to_bits() & 0x8000_0000)),
            FpOp::Sgnjn => {
                f32::from_bits((a.to_bits() & 0x7fff_ffff) | (!b.to_bits() & 0x8000_0000))
            }
            FpOp::Sgnjx => f32::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000)),
            FpOp::Min => a.min(b),
            FpOp::Max => a.max(b),
        }
    }
}

/// Fused multiply-add family (`MADD`/`MSUB`/`NMSUB`/`NMADD` opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FmaOp {
    /// `fmadd.s` — `rs1*rs2 + rs3`
    Madd,
    /// `fmsub.s` — `rs1*rs2 - rs3`
    Msub,
    /// `fnmsub.s` — `-(rs1*rs2) + rs3`
    Nmsub,
    /// `fnmadd.s` — `-(rs1*rs2) - rs3`
    Nmadd,
}

impl FmaOp {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [FmaOp; 4] = [FmaOp::Madd, FmaOp::Msub, FmaOp::Nmsub, FmaOp::Nmadd];

    /// Evaluates the fused operation.
    pub fn eval(self, a: f32, b: f32, c: f32) -> f32 {
        match self {
            FmaOp::Madd => a.mul_add(b, c),
            FmaOp::Msub => a.mul_add(b, -c),
            FmaOp::Nmsub => (-a).mul_add(b, c),
            FmaOp::Nmadd => (-a).mul_add(b, -c),
        }
    }
}

/// A single decoded RV32IMAF instruction.
///
/// The enum is structured by encoding format rather than flat per-mnemonic,
/// which keeps encode/decode and the core's execute stage compact. Immediates
/// are stored as sign-extended `i32` semantic values (e.g. `Lui.imm` is the
/// 20-bit value *before* the implicit `<< 12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `lui rd, imm` — load upper immediate (`rd = imm << 12`).
    Lui { rd: Gpr, imm: i32 },
    /// `auipc rd, imm` — add upper immediate to PC.
    Auipc { rd: Gpr, imm: i32 },
    /// `jal rd, offset` — jump and link. Offset is relative to this
    /// instruction and must be a multiple of 2 in ±1 MiB.
    Jal { rd: Gpr, offset: i32 },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr { rd: Gpr, rs1: Gpr, offset: i32 },
    /// Conditional branch, PC-relative offset in ±4 KiB.
    Branch {
        op: BranchOp,
        rs1: Gpr,
        rs2: Gpr,
        offset: i32,
    },
    /// Integer load `rd = mem[rs1 + offset]`.
    Load {
        width: LoadWidth,
        rd: Gpr,
        rs1: Gpr,
        offset: i32,
    },
    /// Integer store `mem[rs1 + offset] = rs2`.
    Store {
        width: StoreWidth,
        rs1: Gpr,
        rs2: Gpr,
        offset: i32,
    },
    /// Register-immediate ALU operation.
    OpImm {
        op: OpImmOp,
        rd: Gpr,
        rs1: Gpr,
        imm: i32,
    },
    /// Register-register ALU operation (including M extension).
    Op {
        op: OpOp,
        rd: Gpr,
        rs1: Gpr,
        rs2: Gpr,
    },
    /// `fence` — on HammerBlade, drains the remote-op scoreboard: the core
    /// stalls until every outstanding request has been acknowledged.
    Fence,
    /// `ecall` — the simulator treats this as "tile finished".
    Ecall,
    /// `ebreak` — simulator breakpoint/trap.
    Ebreak,
    /// Atomic memory operation `rd = amo(mem[rs1], rs2)` with
    /// acquire/release bits.
    Amo {
        op: AmoOp,
        rd: Gpr,
        rs1: Gpr,
        rs2: Gpr,
        aq: bool,
        rl: bool,
    },
    /// `lr.w rd, (rs1)` — load-reserved.
    LrW {
        rd: Gpr,
        rs1: Gpr,
        aq: bool,
        rl: bool,
    },
    /// `sc.w rd, rs2, (rs1)` — store-conditional.
    ScW {
        rd: Gpr,
        rs1: Gpr,
        rs2: Gpr,
        aq: bool,
        rl: bool,
    },
    /// `flw rd, offset(rs1)` — FP load word.
    Flw { rd: Fpr, rs1: Gpr, offset: i32 },
    /// `fsw rs2, offset(rs1)` — FP store word.
    Fsw { rs1: Gpr, rs2: Fpr, offset: i32 },
    /// Two-operand FP computation.
    FpOp {
        op: FpOp,
        rd: Fpr,
        rs1: Fpr,
        rs2: Fpr,
    },
    /// Fused multiply-add.
    Fma {
        op: FmaOp,
        rd: Fpr,
        rs1: Fpr,
        rs2: Fpr,
        rs3: Fpr,
    },
    /// FP compare writing an integer register: `feq.s`/`flt.s`/`fle.s`
    /// selected by `op` (only `Eq`/`Lt`/`Le` meaningful, see [`FpCmp`]).
    FpCmp {
        op: FpCmp,
        rd: Gpr,
        rs1: Fpr,
        rs2: Fpr,
    },
    /// `fcvt.w.s rd, rs1` — FP to signed int (round to nearest even).
    FcvtWS { rd: Gpr, rs1: Fpr },
    /// `fcvt.wu.s rd, rs1` — FP to unsigned int.
    FcvtWuS { rd: Gpr, rs1: Fpr },
    /// `fcvt.s.w rd, rs1` — signed int to FP.
    FcvtSW { rd: Fpr, rs1: Gpr },
    /// `fcvt.s.wu rd, rs1` — unsigned int to FP.
    FcvtSWu { rd: Fpr, rs1: Gpr },
    /// `fmv.x.w rd, rs1` — move FP bits to integer register.
    FmvXW { rd: Gpr, rs1: Fpr },
    /// `fmv.w.x rd, rs1` — move integer bits to FP register.
    FmvWX { rd: Fpr, rs1: Gpr },
}

/// Floating-point comparison kind for [`Instr::FpCmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmp {
    /// `feq.s`
    Eq,
    /// `flt.s`
    Lt,
    /// `fle.s`
    Le,
}

impl FpCmp {
    /// Every operation variant, in a fixed order (useful for exercisers).
    pub const ALL: [FpCmp; 3] = [FpCmp::Eq, FpCmp::Lt, FpCmp::Le];

    /// Evaluates the comparison (quiet; NaN compares false).
    pub fn eval(self, a: f32, b: f32) -> bool {
        match self {
            FpCmp::Eq => a == b,
            FpCmp::Lt => a < b,
            FpCmp::Le => a <= b,
        }
    }
}

impl Instr {
    /// A canonical no-op (`addi zero, zero, 0`).
    pub const NOP: Instr = Instr::OpImm {
        op: OpImmOp::Addi,
        rd: Gpr::Zero,
        rs1: Gpr::Zero,
        imm: 0,
    };

    /// Whether executing this instruction may access data memory.
    pub fn is_memory_op(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Amo { .. }
                | Instr::LrW { .. }
                | Instr::ScW { .. }
                | Instr::Flw { .. }
                | Instr::Fsw { .. }
        )
    }

    /// Whether this instruction may redirect the PC.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }
}
