//! HBM2 pseudo-channel DRAM model for HammerBlade-RS.
//!
//! The paper simulates four 16 GB stacks of HBM2 at 1.0 GHz (1 TB/s peak)
//! with DRAMSim3 attached to the RTL over DPI. This crate is the Rust
//! substitute: a cycle-level pseudo-channel timing model with banks,
//! row-buffer management, FR-FCFS scheduling and refresh, plus a plain byte
//! [`Dram`] backing store for functional data.
//!
//! Each HammerBlade Cell maps to one pseudo-channel ([`Hbm2Channel`]); the
//! per-channel stats reproduce the HBM2 utilization taxonomy of Figure 11:
//! *read*, *write*, *busy* (requests queued but no data transferring due to
//! DRAM timing) and *idle* (queue empty), with refresh cycles subtracted
//! from the denominator.
//!
//! # Examples
//!
//! ```
//! use hb_mem::{DramRequest, Hbm2Channel, Hbm2Config};
//!
//! let mut ch = Hbm2Channel::new(Hbm2Config::default());
//! ch.enqueue(DramRequest { id: 1, addr: 0x40, write: false });
//! let mut done = None;
//! for _ in 0..100 {
//!     ch.tick();
//!     if let Some(resp) = ch.pop_response() {
//!         done = Some(resp);
//!         break;
//!     }
//! }
//! assert_eq!(done.unwrap().id, 1);
//! ```

mod channel;
mod clock;
pub mod snap;
mod storage;

pub use channel::{DramRequest, DramResponse, Hbm2Channel, Hbm2Config, Hbm2Stats};
pub use clock::ClockDivider;
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use storage::Dram;
