//! End-to-end: a real (small) fault campaign through the real
//! [`SimExecutor`] — killed mid-run via the deterministic execution budget,
//! resumed, and checked byte-identical against an uninterrupted twin. This
//! is the debug-build miniature of the CI `serve-smoke` job.

use hb_core::MachineConfig;
use hb_serve::{report, Campaign, CancelToken, RunOpts, SimExecutor, Store};

#[test]
fn real_campaign_kill_resume_and_cache() {
    let dir = std::env::temp_dir().join(format!("hb-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = MachineConfig {
        threads: 1,
        ..MachineConfig::baseline_16x8()
    };
    // Jacobi is the cheaper campaign kernel (no iss-anchor re-run); 4 fault
    // jobs keeps this tractable in debug builds.
    let campaign = Campaign::fault("e2e jacobi", "jacobi", &cfg, 1, 4);
    let opts = RunOpts {
        threads: 2,
        ..RunOpts::default()
    };

    // Uninterrupted twin.
    let clean_store = Store::open(dir.join("clean")).unwrap();
    let s = campaign.run(
        &clean_store,
        &SimExecutor::new(opts.threads),
        &opts,
        &CancelToken::new(),
    );
    assert_eq!((s.run, s.cached, s.failed), (5, 0, 0), "{s:?}");
    let clean_report = report::build(&campaign, &clean_store);
    assert!(clean_report.contains("jobs: total=5 done=5 missing=0"));
    assert!(
        clean_report.contains("golden: kernel=jacobi"),
        "{clean_report}"
    );
    assert!(clean_report.contains("summary: masked="), "{clean_report}");

    // Killed-at-half twin: execution budget stops after the golden + 2.
    let store = Store::open(dir.join("killed")).unwrap();
    let s = campaign.run(
        &store,
        &SimExecutor::new(opts.threads),
        &RunOpts {
            max_jobs: Some(3),
            ..opts.clone()
        },
        &CancelToken::new(),
    );
    assert_eq!(s.run, 3, "{s:?}");
    assert_eq!(campaign.status(&store).missing, 2);

    // Resume with a *fresh* executor (cold golden cache — it must recover
    // the golden record from the store, not re-simulate into a mismatch).
    let s = campaign.run(
        &store,
        &SimExecutor::new(opts.threads),
        &opts,
        &CancelToken::new(),
    );
    assert_eq!((s.run, s.cached), (2, 3), "{s:?}");

    // Byte-identical aggregate, exactly what CI asserts on the big run.
    assert_eq!(report::build(&campaign, &store), clean_report);

    // Identical re-submission: 100% cache hits.
    let s = campaign.run(
        &store,
        &SimExecutor::new(opts.threads),
        &opts,
        &CancelToken::new(),
    );
    assert_eq!((s.run, s.cached), (0, 5), "{s:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
