//! Functional byte storage backing a Cell's DRAM address range.

/// A flat little-endian byte store. Timing is modelled separately by
/// [`Hbm2Channel`](crate::Hbm2Channel); this type holds the actual data that
/// cache refills read and evictions write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dram {
    bytes: Vec<u8>,
}

impl Dram {
    /// Allocates `size` bytes of zeroed storage.
    pub fn new(size: usize) -> Dram {
        Dram {
            bytes: vec![0; size],
        }
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the store has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads a little-endian `u32` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds capacity.
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes(
            self.bytes[addr as usize..addr as usize + 4]
                .try_into()
                .unwrap(),
        )
    }

    /// Writes a little-endian `u32` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds capacity.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.bytes[addr as usize..addr as usize + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads an `f32` stored at `addr`.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` at `addr`.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.bytes[addr as usize]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.bytes[addr as usize] = value;
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.bytes[addr as usize], self.bytes[addr as usize + 1]])
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        self.bytes[addr as usize..addr as usize + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Borrowed view of `len` bytes at `addr`.
    pub fn slice(&self, addr: u32, len: usize) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len]
    }

    /// Copies `data` into the store at `addr`.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Copies a `u32` slice into the store at `addr` (little-endian).
    pub fn write_u32_slice(&mut self, addr: u32, data: &[u32]) {
        for (i, &w) in data.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, w);
        }
    }

    /// Copies an `f32` slice into the store at `addr`.
    pub fn write_f32_slice(&mut self, addr: u32, data: &[f32]) {
        for (i, &w) in data.iter().enumerate() {
            self.write_f32(addr + 4 * i as u32, w);
        }
    }

    /// Reads `n` little-endian `u32`s starting at `addr`.
    pub fn read_u32_slice(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }

    /// Reads `n` `f32`s starting at `addr`.
    pub fn read_f32_slice(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trip() {
        let mut d = Dram::new(64);
        d.write_u32(8, 0xdead_beef);
        assert_eq!(d.read_u32(8), 0xdead_beef);
        // Little-endian layout.
        assert_eq!(d.read_u8(8), 0xef);
        assert_eq!(d.read_u8(11), 0xde);
    }

    #[test]
    fn f32_round_trip() {
        let mut d = Dram::new(16);
        d.write_f32(0, -1.5);
        assert_eq!(d.read_f32(0), -1.5);
    }

    #[test]
    fn slice_round_trip() {
        let mut d = Dram::new(64);
        d.write_u32_slice(0, &[1, 2, 3, 4]);
        assert_eq!(d.read_u32_slice(0, 4), vec![1, 2, 3, 4]);
        d.write_f32_slice(16, &[0.5, 2.5]);
        assert_eq!(d.read_f32_slice(16, 2), vec![0.5, 2.5]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let d = Dram::new(4);
        d.read_u32(4);
    }
}
