//! Host-level job parallelism for the figure/table sweep binaries.
//!
//! The fig10/fig15/ablation harnesses run many *independent* (kernel,
//! configuration) simulation points; [`run_ordered`] fans them out across a
//! scoped worker pool and collects results in submission order, so table
//! rows print exactly as in the sequential harness. This is the second
//! level of parallelism on top of the per-Machine tile-phase pool
//! (`hb_core::TilePool`): when job-level fan-out is active, Machines should
//! run with `threads = 1` (see [`point_config`]) so the host is not
//! oversubscribed.

use hb_core::MachineConfig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Job-level worker count for a sweep binary: `--threads N` (or
/// `--threads=N`) on the command line wins, else the `HB_THREADS`
/// environment variable, else 1.
pub fn job_threads() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    hb_core::threads_from_env()
}

/// The configuration a fanned-out simulation point should run with: when
/// more than one job runs at a time, each Machine keeps its tile phase
/// sequential (`threads = 1`) so total host threads ≈ `jobs`, not
/// `jobs * threads`. Simulated results are identical either way.
pub fn point_config(base: &MachineConfig, jobs: usize) -> MachineConfig {
    MachineConfig {
        threads: if jobs > 1 { 1 } else { base.threads },
        ..base.clone()
    }
}

/// One job's panic, caught and isolated by [`run_ordered_results`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Submission index of the job that panicked.
    pub index: usize,
    /// Best-effort panic payload message.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

/// Runs `f` over every item on up to `threads` scoped workers and returns
/// one `Result` **per item, in item order** (work-stealing execution,
/// deterministic collection). Each job runs under `catch_unwind`, so a
/// panicking job yields `Err(JobPanic)` in its own slot and every other job
/// still completes — one bad simulation point cannot take down a
/// whole-figure sweep. `threads <= 1` degrades to a plain in-order loop
/// (with the same isolation).
pub fn run_ordered_results<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<Result<T, JobPanic>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let guarded = |i: usize, item: I| -> Result<T, JobPanic> {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| JobPanic {
            index: i,
            message: panic_message(payload.as_ref()),
        })
    };
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| guarded(i, item))
            .collect();
    }
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<Result<T, JobPanic>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("item claimed once");
                let out = guarded(i, item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every job completed"))
        .collect()
}

/// [`run_ordered_results`] for harnesses that treat any panic as fatal:
/// every *other* job still runs to completion first, then the first panic
/// (in item order) is re-raised with its index and message.
pub fn run_ordered<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    run_ordered_results(items, threads, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("{p}")))
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = run_ordered(items, 4, |i, item| {
            assert_eq!(i, item);
            item * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_is_inline_and_ordered() {
        let out = run_ordered(vec!["a", "b", "c"], 1, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_ordered(vec![7usize], 16, |_, x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_pool() {
        let items: Vec<usize> = (0..8).collect();
        let out = run_ordered_results(items, 4, |_, item| {
            if item == 3 {
                panic!("point {item} exploded");
            }
            item * 10
        });
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.index, 3);
                assert!(p.message.contains("point 3 exploded"), "{p:?}");
            } else {
                assert_eq!(*r, Ok(i * 10), "job {i} completed despite job 3");
            }
        }
        // Same isolation on the single-threaded path.
        let out = run_ordered_results(vec![0usize, 1], 1, |_, item| {
            if item == 0 {
                panic!("boom");
            }
            item
        });
        assert!(out[0].is_err());
        assert_eq!(out[1], Ok(1));
    }

    #[test]
    fn run_ordered_reraises_the_first_panic_in_order() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_ordered(vec![0usize, 1, 2], 2, |_, item| {
                if item >= 1 {
                    panic!("item {item} bad");
                }
                item
            })
        }));
        let msg = super::panic_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("job 1 panicked"), "{msg}");
        assert!(msg.contains("item 1 bad"), "{msg}");
    }

    #[test]
    fn point_config_forces_sequential_tiles_under_fanout() {
        let mut base = MachineConfig::baseline_16x8();
        base.threads = 8;
        assert_eq!(point_config(&base, 4).threads, 1);
        assert_eq!(point_config(&base, 1).threads, 8);
    }
}
