//! The network adapter in front of each cache bank: unpacks request
//! packets (including compressed multi-word loads) into bank accesses and
//! re-packs completions into response packets.

use crate::payload::{NodeId, ReqKind, Request, RespKind, Response};
use hb_cache::{AccessKind, CacheBank, CacheRequest};
use hb_noc::{Coord, Packet};
use std::collections::{HashMap, VecDeque};

/// An in-progress request group (one network request = one group; a
/// compressed load spawns several bank accesses).
#[derive(Debug)]
struct Group {
    from: NodeId,
    op_id: u32,
    kind: GroupKind,
    remaining: u8,
    count: u8,
    data: [u32; 4],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupKind {
    Load,
    Store,
    Amo,
}

const INBOX_CAP: usize = 8;
const RESP_CAP: usize = 8;

/// A cache bank plus its packet adapter.
#[derive(Debug)]
pub struct BankNode {
    /// The bank itself.
    pub bank: CacheBank,
    /// This node's network coordinate.
    pub coord: Coord,
    /// Incoming request packets (fed by the Cell from the request network).
    pub inbox: VecDeque<Packet<Request>>,
    /// Outgoing response packets: (destination cell, packet).
    pub resp_outbox: VecDeque<(u8, Packet<Response>)>,
    /// Bank accesses awaiting `try_accept`.
    expansion: VecDeque<CacheRequest>,
    groups: HashMap<u64, Group>,
    next_group: u64,
}

impl BankNode {
    /// Wraps a bank at the given network coordinate.
    pub fn new(bank: CacheBank, coord: Coord) -> BankNode {
        BankNode {
            bank,
            coord,
            inbox: VecDeque::new(),
            resp_outbox: VecDeque::new(),
            expansion: VecDeque::new(),
            groups: HashMap::new(),
            next_group: 0,
        }
    }

    /// Whether the Cell may push another request packet this cycle.
    pub fn can_take(&self) -> bool {
        self.inbox.len() < INBOX_CAP
    }

    /// Advances the adapter + bank one cycle. The Cell separately services
    /// the bank's DRAM side.
    pub fn tick(&mut self) {
        // Unpack one packet into bank accesses when there is room to
        // eventually respond (reserving response space avoids
        // request-response deadlock).
        if self.expansion.is_empty()
            && self.resp_outbox.len() < RESP_CAP
            && self.groups.len() < RESP_CAP
        {
            if let Some(pkt) = self.inbox.pop_front() {
                let req = pkt.payload;
                let gid = self.next_group;
                self.next_group += 1;
                let (kind, count) = match req.kind {
                    ReqKind::Load { addr, width, count } => {
                        for i in 0..count {
                            self.expansion.push_back(CacheRequest {
                                id: gid * 4 + u64::from(i),
                                addr: addr + u32::from(i) * u32::from(width),
                                kind: AccessKind::Load,
                                data: 0,
                                width,
                            });
                        }
                        (GroupKind::Load, count)
                    }
                    ReqKind::Store { addr, width, data } => {
                        self.expansion.push_back(CacheRequest {
                            id: gid * 4,
                            addr,
                            kind: AccessKind::Store,
                            data,
                            width,
                        });
                        (GroupKind::Store, 1)
                    }
                    ReqKind::Amo { addr, op, data } => {
                        self.expansion.push_back(CacheRequest {
                            id: gid * 4,
                            addr,
                            kind: AccessKind::Amo(op),
                            data,
                            width: 4,
                        });
                        (GroupKind::Amo, 1)
                    }
                };
                self.groups.insert(
                    gid,
                    Group {
                        from: req.from,
                        op_id: req.op_id,
                        kind,
                        remaining: count,
                        count,
                        data: [0; 4],
                    },
                );
            }
        }

        // Feed the bank.
        while let Some(&req) = self.expansion.front() {
            if self.bank.try_accept(req) {
                self.expansion.pop_front();
            } else {
                break;
            }
        }

        self.bank.tick();

        // Collect bank completions into response packets.
        while let Some(resp) = self.bank.pop_response() {
            let gid = resp.id / 4;
            let idx = (resp.id % 4) as usize;
            let group = self
                .groups
                .get_mut(&gid)
                .expect("bank response without group");
            group.data[idx] = resp.data;
            group.remaining -= 1;
            if group.remaining == 0 {
                let group = self.groups.remove(&gid).unwrap();
                let kind = match group.kind {
                    GroupKind::Load => RespKind::Load {
                        data: group.data,
                        count: group.count,
                    },
                    GroupKind::Store => RespKind::StoreAck,
                    GroupKind::Amo => RespKind::AmoOld {
                        data: group.data[0],
                    },
                };
                self.resp_outbox.push_back((
                    group.from.cell,
                    Packet {
                        src: self.coord,
                        dst: group.from.coord,
                        payload: Response {
                            op_id: group.op_id,
                            kind,
                        },
                    },
                ));
            }
        }
    }

    /// Serializes the adapter state and the bank behind it (the map of
    /// in-progress groups sorted by id for determinism).
    pub(crate) fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        use crate::payload::{snap_save_req_packet, snap_save_resp_packet};
        w.tag(b"BNOD");
        self.bank.snap_save(w);
        w.usize(self.inbox.len());
        for pkt in &self.inbox {
            snap_save_req_packet(w, pkt);
        }
        w.usize(self.resp_outbox.len());
        for (cell, pkt) in &self.resp_outbox {
            w.u8(*cell);
            snap_save_resp_packet(w, pkt);
        }
        w.usize(self.expansion.len());
        for req in &self.expansion {
            hb_cache::snap_save_request(w, req);
        }
        let mut groups: Vec<(&u64, &Group)> = self.groups.iter().collect();
        groups.sort_by_key(|(id, _)| **id);
        w.usize(groups.len());
        for (id, g) in groups {
            w.u64(*id);
            w.u8(g.from.cell);
            crate::payload::snap_save_coord(w, g.from.coord);
            w.u32(g.op_id);
            w.u8(match g.kind {
                GroupKind::Load => 0,
                GroupKind::Store => 1,
                GroupKind::Amo => 2,
            });
            w.u8(g.remaining);
            w.u8(g.count);
            for d in g.data {
                w.u32(d);
            }
        }
        w.u64(self.next_group);
    }

    /// Restores state written by [`BankNode::snap_save`].
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation or a bank-geometry mismatch.
    pub(crate) fn snap_load(
        &mut self,
        r: &mut hb_mem::SnapReader,
    ) -> Result<(), hb_mem::SnapError> {
        use crate::payload::{snap_load_req_packet, snap_load_resp_packet};
        r.expect_tag(b"BNOD", "BankNode section")?;
        self.bank.snap_load(r)?;
        self.inbox.clear();
        for _ in 0..r.seq_len()? {
            self.inbox.push_back(snap_load_req_packet(r)?);
        }
        self.resp_outbox.clear();
        for _ in 0..r.seq_len()? {
            let cell = r.u8()?;
            self.resp_outbox
                .push_back((cell, snap_load_resp_packet(r)?));
        }
        self.expansion.clear();
        for _ in 0..r.seq_len()? {
            self.expansion.push_back(hb_cache::snap_load_request(r)?);
        }
        self.groups.clear();
        for _ in 0..r.seq_len()? {
            let id = r.u64()?;
            let from = NodeId {
                cell: r.u8()?,
                coord: crate::payload::snap_load_coord(r)?,
            };
            let op_id = r.u32()?;
            let kind = match r.u8()? {
                0 => GroupKind::Load,
                1 => GroupKind::Store,
                2 => GroupKind::Amo,
                _ => return Err(hb_mem::SnapError::Bad("unknown group kind tag")),
            };
            let remaining = r.u8()?;
            let count = r.u8()?;
            let mut data = [0u32; 4];
            for d in &mut data {
                *d = r.u32()?;
            }
            self.groups.insert(
                id,
                Group {
                    from,
                    op_id,
                    kind,
                    remaining,
                    count,
                    data,
                },
            );
        }
        self.next_group = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cache::{CacheConfig, LineRequestKind};

    fn node() -> BankNode {
        BankNode::new(CacheBank::new(CacheConfig::default()), Coord::new(0, 0))
    }

    fn mk_load(op_id: u32, addr: u32, count: u8) -> Packet<Request> {
        Packet {
            src: Coord::new(1, 1),
            dst: Coord::new(0, 0),
            payload: Request {
                from: NodeId {
                    cell: 0,
                    coord: Coord::new(1, 1),
                },
                op_id,
                kind: ReqKind::Load {
                    addr,
                    width: 4,
                    count,
                },
            },
        }
    }

    /// Services the bank's memory side with zero-latency DRAM.
    fn service_mem(node: &mut BankNode, backing: &mut [u8]) {
        while let Some(mreq) = node.bank.pop_mem_request() {
            match mreq.kind {
                LineRequestKind::Fetch => {
                    let a = mreq.line_addr as usize;
                    let line: Vec<u8> = backing[a..a + 64].to_vec();
                    node.bank.complete_fetch(mreq.line_addr, &line);
                }
                LineRequestKind::Writeback { data, valid } => {
                    let a = mreq.line_addr as usize;
                    for i in 0..64 {
                        if valid & (1 << i) != 0 {
                            backing[a + i] = data[i];
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn compressed_load_returns_four_words() {
        let mut n = node();
        let mut mem = vec![0u8; 4096];
        for i in 0..4u32 {
            mem[(0x100 + 4 * i) as usize..(0x104 + 4 * i) as usize]
                .copy_from_slice(&(10 + i).to_le_bytes());
        }
        n.inbox.push_back(mk_load(7, 0x100, 4));
        for _ in 0..40 {
            n.tick();
            service_mem(&mut n, &mut mem);
        }
        let (cell, pkt) = n.resp_outbox.pop_front().expect("response");
        assert_eq!(cell, 0);
        assert_eq!(pkt.dst, Coord::new(1, 1));
        assert_eq!(pkt.payload.op_id, 7);
        match pkt.payload.kind {
            RespKind::Load { data, count } => {
                assert_eq!(count, 4);
                assert_eq!(data, [10, 11, 12, 13]);
            }
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn store_gets_single_ack() {
        let mut n = node();
        n.inbox.push_back(Packet {
            src: Coord::new(2, 3),
            dst: Coord::new(0, 0),
            payload: Request {
                from: NodeId {
                    cell: 1,
                    coord: Coord::new(2, 3),
                },
                op_id: 9,
                kind: ReqKind::Store {
                    addr: 0x40,
                    width: 4,
                    data: 5,
                },
            },
        });
        for _ in 0..10 {
            n.tick();
        }
        let (cell, pkt) = n.resp_outbox.pop_front().expect("ack");
        assert_eq!(cell, 1);
        assert_eq!(pkt.payload.kind, RespKind::StoreAck);
    }

    #[test]
    fn one_packet_per_cycle_unpacked() {
        let mut n = node();
        let mut mem = vec![0u8; 1 << 16];
        for i in 0..4 {
            n.inbox.push_back(mk_load(i, 0x1000 * i, 1));
        }
        let mut responses = 0;
        for _ in 0..200 {
            n.tick();
            service_mem(&mut n, &mut mem);
            responses += n.resp_outbox.drain(..).count();
        }
        assert_eq!(responses, 4);
    }
}
