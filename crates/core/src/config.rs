//! Machine configuration: geometry, feature knobs and timing parameters.
//!
//! Every architectural feature evaluated in the paper's Figure 10 ablation
//! has a knob here, and the Table II machine configurations are provided as
//! presets.

use hb_mem::Hbm2Config;
use hb_noc::StripConfig;

/// Tile-array shape of one Cell (x = columns, y = rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellDim {
    /// Tiles per row.
    pub x: u8,
    /// Tile rows.
    pub y: u8,
}

impl CellDim {
    /// Total tiles in the Cell.
    pub fn tiles(self) -> usize {
        self.x as usize * self.y as usize
    }
}

/// Full configuration of a simulated HammerBlade machine.
///
/// Construct via a preset ([`MachineConfig::baseline_16x8`] etc.) and adjust
/// fields, e.g. `MachineConfig { ruche_factor: 0, ..MachineConfig::baseline_16x8() }`
/// for the 2-D-mesh ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Tile array per Cell.
    pub cell_dim: CellDim,
    /// Number of Cells simulated together (multi-Cell runs follow the
    /// paper's methodology: independent single-Cell simulations plus an
    /// inter-Cell transfer estimate).
    pub num_cells: u8,

    // ---- Figure 10 feature knobs ----
    /// Horizontal Ruche link skip distance (3 in HB, 0 = plain 2-D mesh).
    pub ruche_factor: u8,
    /// Non-blocking remote loads via the 63-entry scoreboard. When `false`,
    /// every remote memory operation stalls the core until its response
    /// returns (the pre-HB baseline).
    pub non_blocking_loads: bool,
    /// Write-validate cache policy (write misses allocate without fetching).
    pub write_validate: bool,
    /// Load Packet Compression: up to four consecutive sequential remote
    /// loads to the same destination combine into one packet.
    pub load_packet_compression: bool,
    /// Regional IPOLY hashing of Local-DRAM lines across cache banks.
    /// When `false`, lines stripe bank = line mod banks (prone to partition
    /// camping under 2^n strides).
    pub ipoly_hashing: bool,
    /// Non-blocking cache banks with consolidated MSHRs. When `false`,
    /// banks block on any outstanding miss.
    pub non_blocking_cache: bool,

    // ---- Geometry ----
    /// Scratchpad bytes per tile.
    pub spm_bytes: u32,
    /// Instruction-cache bytes per tile (direct-mapped, 16 B lines).
    pub icache_bytes: u32,
    /// Cache-bank sets.
    pub cache_sets: usize,
    /// Cache-bank associativity.
    pub cache_ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// MSHRs per cache bank (outstanding primary misses).
    pub cache_mshrs: usize,
    /// DRAM window per Cell in bytes (EVA offset field is 24 bits).
    pub dram_bytes_per_cell: u32,

    // ---- Timing ----
    /// Fused multiply-add latency (cycles until a dependent may issue).
    pub fma_latency: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Iterative integer divide latency.
    pub div_latency: u64,
    /// FP divide latency (iterative unit, blocking).
    pub fdiv_latency: u64,
    /// FP square-root latency (iterative unit, blocking).
    pub fsqrt_latency: u64,
    /// Short FP op latency (add/sub/compare/convert).
    pub fp_latency: u64,
    /// Local scratchpad load-use latency.
    pub spm_load_latency: u64,
    /// Branch misprediction penalty.
    pub branch_miss_penalty: u64,
    /// Instruction-cache miss penalty.
    pub icache_miss_latency: u64,
    /// Maximum outstanding remote operations per tile (scoreboard size).
    pub max_outstanding: usize,
    /// Router input FIFO depth.
    pub net_fifo_depth: usize,
    /// Cycles one packet occupies a link (>1 models narrower channels).
    pub link_occupancy: u8,
    /// Core clock in MHz (1350 on silicon).
    pub core_freq_mhz: u32,
    /// Memory clock in MHz (1000 for HBM2).
    pub mem_freq_mhz: u32,
    /// HBM2 pseudo-channel parameters (one channel per Cell).
    pub hbm: Hbm2Config,
    /// Cache-strip refill channel parameters.
    pub strip: StripConfig,

    // ---- Resilience ----
    /// Tiles (Cell coordinates, applied to every Cell) configured dead:
    /// launched but never executing, bypassed in the barrier trees, with
    /// their group work redistributed over the `TG_LIVE_*`/`TG_ADOPT` CSRs.
    /// Their network interfaces stay alive so their scratchpads remain
    /// addressable. Empty on every preset.
    pub disabled_tiles: Vec<(u8, u8)>,

    // ---- Host execution (does not affect simulated results) ----
    /// Host worker threads for the tile phase of each cycle (see
    /// `hb_core::parallel`). `1` steps tiles inline; `>1` shards them
    /// across a persistent pool. Results are bit-identical either way.
    /// Presets seed this from the `HB_THREADS` environment variable.
    pub threads: usize,
    /// Telemetry sampling window in core cycles; `0` disables sampling.
    /// Consulted by the `hb-obs` observer factory (see `hb_core::observe`)
    /// when one is installed — without a factory the knob is inert.
    /// Sampling never changes simulated results; runs are bit-identical
    /// at any window.
    pub telemetry_window: u64,
}

impl MachineConfig {
    /// The paper's baseline HB machine: a 16x8-tile Cell with 32 cache
    /// banks, all architectural features on (Table II column 1).
    pub fn baseline_16x8() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 16, y: 8 },
            num_cells: 1,
            ruche_factor: 3,
            non_blocking_loads: true,
            write_validate: true,
            load_packet_compression: true,
            ipoly_hashing: true,
            non_blocking_cache: true,
            spm_bytes: 4096,
            icache_bytes: 4096,
            cache_sets: 64,
            cache_ways: 8,
            line_bytes: 64,
            cache_mshrs: 8,
            dram_bytes_per_cell: 16 << 20,
            fma_latency: 3,
            mul_latency: 2,
            div_latency: 16,
            fdiv_latency: 12,
            fsqrt_latency: 12,
            fp_latency: 2,
            spm_load_latency: 2,
            branch_miss_penalty: 2,
            icache_miss_latency: 40,
            max_outstanding: 63,
            net_fifo_depth: 4,
            link_occupancy: 1,
            core_freq_mhz: 1350,
            mem_freq_mhz: 1000,
            hbm: Hbm2Config::default(),
            strip: StripConfig::default(),
            disabled_tiles: Vec::new(),
            threads: crate::parallel::threads_from_env(),
            telemetry_window: 0,
        }
    }

    /// Table II column 2: Cell doubled vertically (16x16). Twice the tiles,
    /// same cache banks (half the cache capacity per tile).
    pub fn cell_16x16() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 16, y: 16 },
            ..MachineConfig::baseline_16x8()
        }
    }

    /// Table II column 3: Cell doubled horizontally (32x8). Twice the tiles
    /// *and* twice the cache banks/bandwidth, at the cost of bisection
    /// pressure.
    pub fn cell_32x8() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 32, y: 8 },
            ..MachineConfig::baseline_16x8()
        }
    }

    /// Table II column 4: two 16x8 Cells (2x16x8), each with its own
    /// Local-DRAM address space.
    pub fn two_cells_16x8() -> MachineConfig {
        MachineConfig {
            num_cells: 2,
            ..MachineConfig::baseline_16x8()
        }
    }

    /// The Figure 10 starting point: a "Baseline Manycore" normalized to a
    /// TILE64-class design — quarter core density (an 8x4 array in the same
    /// area), half-width router channels, half the cache, and none of HB's
    /// architectural features.
    pub fn baseline_manycore() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 8, y: 4 },
            ruche_factor: 0,
            non_blocking_loads: false,
            write_validate: false,
            load_packet_compression: false,
            ipoly_hashing: false,
            non_blocking_cache: false,
            cache_sets: 32,
            link_occupancy: 2,
            net_fifo_depth: 2,
            ..MachineConfig::baseline_16x8()
        }
    }

    /// The "Cellular Baseline" of Figure 10: HB's physical normalization
    /// (full router bandwidth, full cache, full core density) with all
    /// architectural features still off.
    pub fn cellular_baseline() -> MachineConfig {
        MachineConfig {
            ruche_factor: 0,
            non_blocking_loads: false,
            write_validate: false,
            load_packet_compression: false,
            ipoly_hashing: false,
            non_blocking_cache: false,
            ..MachineConfig::baseline_16x8()
        }
    }

    /// Cache banks per Cell (two strips of `cell_dim.x`).
    pub fn banks_per_cell(&self) -> usize {
        2 * self.cell_dim.x as usize
    }

    /// Cache capacity per Cell in bytes.
    pub fn cell_cache_bytes(&self) -> usize {
        self.banks_per_cell() * self.cache_sets * self.cache_ways * self.line_bytes as usize
    }

    /// Network grid width (tile columns).
    pub fn net_width(&self) -> u8 {
        self.cell_dim.x
    }

    /// Network grid height (tile rows plus the two cache-bank strips).
    pub fn net_height(&self) -> u8 {
        self.cell_dim.y + 2
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] describing why the configuration
    /// is impossible (zero tiles, non-power-of-two bank count, SPM too
    /// small, ...).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cell_dim.x == 0 || self.cell_dim.y == 0 {
            return Err(ConfigError::EmptyCell { dim: self.cell_dim });
        }
        if !self.banks_per_cell().is_power_of_two() {
            return Err(ConfigError::BankCountNotPowerOfTwo {
                banks: self.banks_per_cell(),
            });
        }
        if self.spm_bytes < 256 {
            return Err(ConfigError::SpmTooSmall {
                bytes: self.spm_bytes,
            });
        }
        if self.max_outstanding < 1 {
            return Err(ConfigError::ZeroScoreboard);
        }
        if self.num_cells < 1 {
            return Err(ConfigError::ZeroCells);
        }
        if self.dram_bytes_per_cell > (16 << 20) {
            return Err(ConfigError::DramWindowTooLarge {
                bytes: self.dram_bytes_per_cell,
            });
        }
        if let Some(&(x, y)) = self
            .disabled_tiles
            .iter()
            .find(|&&(x, y)| x >= self.cell_dim.x || y >= self.cell_dim.y)
        {
            return Err(ConfigError::DisabledTileOutOfRange {
                tile: (x, y),
                dim: self.cell_dim,
            });
        }
        Ok(())
    }

    /// Like [`MachineConfig::validate`], for call sites where an invalid
    /// configuration is a programming error.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on an impossible
    /// configuration.
    pub fn validate_or_panic(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid machine configuration: {e}");
        }
    }
}

/// Why a [`MachineConfig`] is internally inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A Cell dimension is zero.
    EmptyCell {
        /// The offending shape.
        dim: CellDim,
    },
    /// IPOLY hashing and the strip network require a power-of-two bank
    /// count (banks = 2 x cell width).
    BankCountNotPowerOfTwo {
        /// The computed bank count.
        banks: usize,
    },
    /// The scratchpad cannot hold even a minimal stack frame.
    SpmTooSmall {
        /// The configured size.
        bytes: u32,
    },
    /// The remote-op scoreboard must hold at least one entry.
    ZeroScoreboard,
    /// A machine needs at least one Cell.
    ZeroCells,
    /// The Local/Group-DRAM EVA offset field is 24 bits, capping the
    /// per-Cell window at 16 MiB.
    DramWindowTooLarge {
        /// The configured size.
        bytes: u32,
    },
    /// A configured-dead tile lies outside the Cell's tile array.
    DisabledTileOutOfRange {
        /// The offending coordinates.
        tile: (u8, u8),
        /// The Cell shape.
        dim: CellDim,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyCell { dim } => {
                write!(f, "empty cell: {}x{} tiles", dim.x, dim.y)
            }
            ConfigError::BankCountNotPowerOfTwo { banks } => {
                write!(f, "bank count {banks} must be a power of two")
            }
            ConfigError::SpmTooSmall { bytes } => {
                write!(f, "SPM of {bytes} bytes is too small (minimum 256)")
            }
            ConfigError::ZeroScoreboard => {
                write!(f, "max_outstanding must be at least 1")
            }
            ConfigError::ZeroCells => write!(f, "num_cells must be at least 1"),
            ConfigError::DisabledTileOutOfRange { tile, dim } => {
                write!(
                    f,
                    "disabled tile ({},{}) outside the {}x{} cell",
                    tile.0, tile.1, dim.x, dim.y
                )
            }
            ConfigError::DramWindowTooLarge { bytes } => {
                write!(
                    f,
                    "DRAM window of {bytes} bytes exceeds the 24-bit EVA offset field (16 MiB)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_geometry() {
        // Baseline: 32 banks, 1 MB of cache per Cell.
        let c = MachineConfig::baseline_16x8();
        c.validate().unwrap();
        assert_eq!(c.banks_per_cell(), 32);
        assert_eq!(c.cell_cache_bytes(), 1 << 20);
        assert_eq!(c.cell_dim.tiles(), 128);

        // 32x8: 64 banks, 2 MB.
        let c = MachineConfig::cell_32x8();
        c.validate().unwrap();
        assert_eq!(c.banks_per_cell(), 64);
        assert_eq!(c.cell_cache_bytes(), 2 << 20);

        // 16x16: same banks as baseline, twice the tiles.
        let c = MachineConfig::cell_16x16();
        c.validate().unwrap();
        assert_eq!(c.banks_per_cell(), 32);
        assert_eq!(c.cell_dim.tiles(), 256);
    }

    #[test]
    fn validate_reports_each_inconsistency() {
        let base = MachineConfig::baseline_16x8();

        let c = MachineConfig {
            cell_dim: CellDim { x: 0, y: 8 },
            ..base.clone()
        };
        assert!(matches!(c.validate(), Err(ConfigError::EmptyCell { .. })));

        let c = MachineConfig {
            cell_dim: CellDim { x: 6, y: 4 },
            ..base.clone()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::BankCountNotPowerOfTwo { banks: 12 })
        );

        let c = MachineConfig {
            spm_bytes: 128,
            ..base.clone()
        };
        assert_eq!(c.validate(), Err(ConfigError::SpmTooSmall { bytes: 128 }));

        let c = MachineConfig {
            max_outstanding: 0,
            ..base.clone()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroScoreboard));

        let c = MachineConfig {
            num_cells: 0,
            ..base.clone()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroCells));

        let c = MachineConfig {
            dram_bytes_per_cell: 32 << 20,
            ..base.clone()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::DramWindowTooLarge { bytes: 32 << 20 })
        );

        let c = MachineConfig {
            disabled_tiles: vec![(1, 1), (16, 0)],
            ..base
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::DisabledTileOutOfRange {
                tile: (16, 0),
                dim: CellDim { x: 16, y: 8 }
            })
        );
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn validate_or_panic_panics_on_bad_config() {
        MachineConfig {
            num_cells: 0,
            ..MachineConfig::baseline_16x8()
        }
        .validate_or_panic();
    }

    #[test]
    fn presets_differ_only_in_documented_knobs() {
        let base = MachineConfig::baseline_16x8();
        let cellular = MachineConfig::cellular_baseline();
        assert_eq!(base.cell_dim, cellular.cell_dim);
        assert!(!cellular.non_blocking_loads);
        assert!(base.non_blocking_loads);
    }
}
