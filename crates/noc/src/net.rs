//! Cycle-level 2-D mesh / Half-Ruche network with dimension-ordered routing.

use std::collections::VecDeque;

/// Number of router ports (local + 4 mesh + 2 Ruche).
const NPORTS: usize = 7;

/// A network node coordinate. `x` grows eastward, `y` grows southward
/// (row 0 is the northern cache-bank strip in a HammerBlade Cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column.
    pub x: u8,
    /// Row.
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u8, y: u8) -> Coord {
        Coord { x, y }
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A router port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Port {
    /// Injection/ejection port to the attached tile or cache bank.
    Local = 0,
    /// Toward `y - 1`.
    North = 1,
    /// Toward `y + 1`.
    South = 2,
    /// Toward `x + 1`.
    East = 3,
    /// Toward `x - 1`.
    West = 4,
    /// Ruche link toward `x + ruche_factor`.
    RucheEast = 5,
    /// Ruche link toward `x - ruche_factor`.
    RucheWest = 6,
}

impl Port {
    /// Number of router ports.
    pub const COUNT: usize = NPORTS;

    const ALL: [Port; NPORTS] = [
        Port::Local,
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::RucheEast,
        Port::RucheWest,
    ];

    /// The port with discriminant `i % COUNT` (the inverse of `as usize`,
    /// made total so externally supplied indices — e.g. fault-plan draws —
    /// are always valid).
    pub fn from_index(i: usize) -> Port {
        Port::ALL[i % NPORTS]
    }
}

/// Dimension order used by the deterministic routing function.
///
/// The paper routes requests X→Y and responses Y→X, which maximizes
/// throughput given cache banks on the north/south edges of the Cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteOrder {
    /// Resolve the X offset first, then Y (request network).
    XThenY,
    /// Resolve the Y offset first, then X (response network).
    YThenX,
}

/// Static configuration of a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Columns.
    pub width: u8,
    /// Rows.
    pub height: u8,
    /// Horizontal Ruche link skip distance; 0 disables Ruche links.
    pub ruche_factor: u8,
    /// Dimension order of the routing function.
    pub order: RouteOrder,
    /// Input FIFO depth per port.
    pub fifo_depth: usize,
    /// Cycles a packet occupies a link (1 = full-width channels; 2 models
    /// half-width channels for baseline-router ablations).
    pub link_occupancy: u8,
}

impl NetworkConfig {
    /// A full-width mesh/Ruche configuration with the given shape.
    pub fn new(width: u8, height: u8, ruche_factor: u8, order: RouteOrder) -> NetworkConfig {
        NetworkConfig {
            width,
            height,
            ruche_factor,
            order,
            fifo_depth: 4,
            link_occupancy: 1,
        }
    }
}

/// A single-flit packet. HammerBlade networks carry one word-granularity
/// memory operation per packet; `payload` is the simulator-level content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet<P> {
    /// Injecting node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Carried operation.
    pub payload: P,
}

/// Per-link utilization counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Cycles a packet traversed the link.
    pub busy: u64,
    /// Cycles a packet was held at the link because the downstream buffer
    /// was full.
    pub stalled: u64,
    /// Packets that completed a traversal of the link. Unlike `busy`, which
    /// also counts serialization cycles on narrow links, this increments
    /// exactly once per delivered packet.
    pub flits: u64,
}

impl LinkStats {
    /// busy / (busy + stalled + idle) requires a cycle count; this is
    /// busy / elapsed.
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy as f64 / elapsed as f64
        }
    }

    /// Fraction of occupied cycles spent stalled.
    pub fn stall_fraction(&self) -> f64 {
        let total = self.busy + self.stalled;
        if total == 0 {
            0.0
        } else {
            self.stalled as f64 / total as f64
        }
    }

    /// Cycles the link carried no traffic at all, out of `elapsed`.
    pub fn idle(&self, elapsed: u64) -> u64 {
        elapsed.saturating_sub(self.busy + self.stalled)
    }
}

impl LinkStats {
    /// Serializes the counter triple.
    pub fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        w.u64(self.busy);
        w.u64(self.stalled);
        w.u64(self.flits);
    }

    /// Restores a counter triple.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError::Eof`] on truncation.
    pub fn snap_load(r: &mut hb_mem::SnapReader) -> Result<LinkStats, hb_mem::SnapError> {
        Ok(LinkStats {
            busy: r.u64()?,
            stalled: r.u64()?,
            flits: r.u64()?,
        })
    }
}

impl std::ops::Sub for LinkStats {
    type Output = LinkStats;

    fn sub(self, rhs: LinkStats) -> LinkStats {
        LinkStats {
            busy: self.busy - rhs.busy,
            stalled: self.stalled - rhs.stalled,
            flits: self.flits - rhs.flits,
        }
    }
}

impl std::ops::Add for LinkStats {
    type Output = LinkStats;

    fn add(self, rhs: LinkStats) -> LinkStats {
        LinkStats {
            busy: self.busy + rhs.busy,
            stalled: self.stalled + rhs.stalled,
            flits: self.flits + rhs.flits,
        }
    }
}

/// Network-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Packets injected at local ports.
    pub injected: u64,
    /// Packets ejected at local ports.
    pub ejected: u64,
    /// Flits replayed by the link-level ack/retransmit protocol after an
    /// injected corruption was detected.
    pub retransmits: u64,
}

/// Extra cycles a corrupted flit waits before its link-level replay: one
/// cycle for the corrupted transfer, one for the nack, one to re-arbitrate.
pub const RETRY_PENALTY: u64 = 3;

/// A completed link-level retransmit, drained for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitEvent {
    /// Cycle the corruption was detected (replay lands `RETRY_PENALTY`
    /// cycles later).
    pub cycle: u64,
    /// Router whose output link carried the corrupted flit.
    pub at: Coord,
    /// The output port.
    pub port: Port,
}

#[derive(Debug)]
struct Router<P> {
    inputs: [VecDeque<Packet<P>>; NPORTS],
    /// Round-robin pointer per output port.
    rr: [usize; NPORTS],
}

impl<P> Router<P> {
    fn new() -> Router<P> {
        Router {
            inputs: std::array::from_fn(|_| VecDeque::new()),
            rr: [0; NPORTS],
        }
    }
}

/// A cycle-level single-flit-packet network: 2-D mesh plus optional
/// horizontal Ruche links, credit/latch flow control, round-robin output
/// arbitration and dimension-ordered routing.
/// One router's output latches: a packet plus its link-release cycle per
/// output port.
type OutputLatches<P> = [Option<(Packet<P>, u64)>; NPORTS];

#[derive(Debug)]
pub struct Network<P> {
    cfg: NetworkConfig,
    routers: Vec<Router<P>>,
    /// Output latch per (router, output port): the packet and the cycle at
    /// which it may leave the link (link_occupancy pacing).
    latches: Vec<OutputLatches<P>>,
    link_stats: Vec<[LinkStats; NPORTS]>,
    eject_qs: Vec<VecDeque<Packet<P>>>,
    /// Packets currently in router input FIFOs or output latches — the
    /// population [`tick`](Self::tick) can act on. Ejection queues are
    /// excluded: their draining is driven by the attached nodes, not by
    /// `tick`. Zero makes a tick a provable no-op (quiescence fast path).
    moving: usize,
    stats: NetworkStats,
    cycle: u64,
    /// Scheduled link faults as `(cycle, router index, port)`: the first
    /// delivery attempt at or after `cycle` on that output link is
    /// corrupted, detected, and replayed. Empty on the zero-injection path.
    link_faults: Vec<(u64, usize, usize)>,
    retransmit_events: Vec<RetransmitEvent>,
}

impl<P: Clone + std::fmt::Debug> Network<P> {
    /// Builds a network of `width * height` routers.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the FIFO depth is zero.
    pub fn new(cfg: NetworkConfig) -> Network<P> {
        assert!(
            cfg.width > 0 && cfg.height > 0,
            "network dimensions must be nonzero"
        );
        assert!(cfg.fifo_depth > 0, "fifo depth must be nonzero");
        let n = cfg.width as usize * cfg.height as usize;
        Network {
            cfg,
            routers: (0..n).map(|_| Router::new()).collect(),
            latches: (0..n).map(|_| std::array::from_fn(|_| None)).collect(),
            link_stats: vec![[LinkStats::default(); NPORTS]; n],
            eject_qs: (0..n).map(|_| VecDeque::new()).collect(),
            moving: 0,
            stats: NetworkStats::default(),
            cycle: 0,
            link_faults: Vec::new(),
            retransmit_events: Vec::new(),
        }
    }

    /// Schedules a transient fault on the output link of (`at`, `port`):
    /// the first flit attempting to cross that link at or after `cycle` is
    /// corrupted in flight, caught by the link-level check, and replayed
    /// after [`RETRY_PENALTY`] cycles. A fault scheduled on a link that
    /// never carries traffic again stays armed and is architecturally
    /// masked. No packet is ever lost, so conservation holds.
    pub fn schedule_link_fault(&mut self, cycle: u64, at: Coord, port: Port) {
        let idx = self.idx(at);
        self.link_faults.push((cycle, idx, port as usize));
    }

    /// Drains retransmit events recorded since the last call.
    pub fn drain_retransmit_events(&mut self) -> Vec<RetransmitEvent> {
        std::mem::take(&mut self.retransmit_events)
    }

    /// Consumes an armed fault on (`idx`, `port`) whose cycle has come due,
    /// if any. Out of line: only reached when faults are scheduled.
    #[cold]
    fn take_due_fault(&mut self, idx: usize, port: usize) -> bool {
        let due = self
            .link_faults
            .iter()
            .position(|&(c, i, p)| c <= self.cycle && i == idx && p == port);
        match due {
            Some(at) => {
                self.link_faults.swap_remove(at);
                true
            }
            None => false,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Injection/ejection totals.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    fn idx(&self, c: Coord) -> usize {
        c.y as usize * self.cfg.width as usize + c.x as usize
    }

    fn coord(&self, idx: usize) -> Coord {
        Coord::new(
            (idx % self.cfg.width as usize) as u8,
            (idx / self.cfg.width as usize) as u8,
        )
    }

    /// Where the output link of (`router`, `port`) lands: `None` for the
    /// local ejection queue or a nonexistent link.
    fn link_dest(&self, idx: usize, port: Port) -> Option<(usize, Port)> {
        let c = self.coord(idx);
        let rf = self.cfg.ruche_factor;
        let (w, h) = (self.cfg.width, self.cfg.height);
        match port {
            Port::Local => None,
            Port::North => (c.y > 0).then(|| (self.idx(Coord::new(c.x, c.y - 1)), Port::South)),
            Port::South => (c.y + 1 < h).then(|| (self.idx(Coord::new(c.x, c.y + 1)), Port::North)),
            Port::East => (c.x + 1 < w).then(|| (self.idx(Coord::new(c.x + 1, c.y)), Port::West)),
            Port::West => (c.x > 0).then(|| (self.idx(Coord::new(c.x - 1, c.y)), Port::East)),
            Port::RucheEast => (rf > 0 && c.x + rf < w)
                .then(|| (self.idx(Coord::new(c.x + rf, c.y)), Port::RucheWest)),
            Port::RucheWest => (rf > 0 && c.x >= rf)
                .then(|| (self.idx(Coord::new(c.x - rf, c.y)), Port::RucheEast)),
        }
    }

    /// The deterministic routing function: which output port a packet at
    /// `at` destined for `dst` takes.
    pub fn route_port(&self, at: Coord, dst: Coord) -> Port {
        match self.cfg.order {
            RouteOrder::XThenY => {
                if at.x != dst.x {
                    self.route_x(at, dst)
                } else if at.y != dst.y {
                    self.route_y(at, dst)
                } else {
                    Port::Local
                }
            }
            RouteOrder::YThenX => {
                if at.y != dst.y {
                    self.route_y(at, dst)
                } else if at.x != dst.x {
                    self.route_x(at, dst)
                } else {
                    Port::Local
                }
            }
        }
    }

    fn route_x(&self, at: Coord, dst: Coord) -> Port {
        let rf = self.cfg.ruche_factor;
        if dst.x > at.x {
            let dx = dst.x - at.x;
            if rf > 0 && dx >= rf && at.x + rf < self.cfg.width {
                Port::RucheEast
            } else {
                Port::East
            }
        } else {
            let dx = at.x - dst.x;
            if rf > 0 && dx >= rf && at.x >= rf {
                Port::RucheWest
            } else {
                Port::West
            }
        }
    }

    fn route_y(&self, at: Coord, dst: Coord) -> Port {
        if dst.y > at.y {
            Port::South
        } else {
            Port::North
        }
    }

    /// Injects a packet at its source node's local port. Returns `false`
    /// when the injection FIFO is full (the caller must retry).
    pub fn inject(&mut self, at: Coord, pkt: Packet<P>) -> bool {
        let idx = self.idx(at);
        if self.routers[idx].inputs[Port::Local as usize].len() >= self.cfg.fifo_depth {
            return false;
        }
        self.routers[idx].inputs[Port::Local as usize].push_back(pkt);
        self.moving += 1;
        self.stats.injected += 1;
        true
    }

    /// Whether node `at` can accept an injection this cycle.
    pub fn can_inject(&self, at: Coord) -> bool {
        let idx = self.idx(at);
        self.routers[idx].inputs[Port::Local as usize].len() < self.cfg.fifo_depth
    }

    /// Pops a packet delivered to node `at`, if any.
    pub fn eject(&mut self, at: Coord) -> Option<Packet<P>> {
        let idx = self.idx(at);
        let pkt = self.eject_qs[idx].pop_front();
        if pkt.is_some() {
            self.stats.ejected += 1;
        }
        pkt
    }

    /// Packets currently inside the network (injected but not ejected,
    /// excluding those sitting in ejection queues).
    pub fn in_flight(&self) -> u64 {
        debug_assert_eq!(
            self.moving,
            self.routers
                .iter()
                .map(|r| r.inputs.iter().map(VecDeque::len).sum::<usize>())
                .sum::<usize>()
                + self
                    .latches
                    .iter()
                    .map(|l| l.iter().filter(|p| p.is_some()).count())
                    .sum::<usize>(),
            "moving-packet counter drifted from router state"
        );
        (self.moving + self.eject_qs.iter().map(VecDeque::len).sum::<usize>()) as u64
    }

    /// Whether the network holds no packets at all.
    pub fn is_drained(&self) -> bool {
        self.in_flight() == 0
    }

    /// Advances the network one cycle: deliver latched packets downstream,
    /// then arbitrate input FIFOs into output latches (so a packet moves at
    /// most one link per cycle).
    pub fn tick(&mut self) {
        self.cycle += 1;
        // Quiescence fast path: with no packet in any input FIFO or output
        // latch, both phases below are no-ops and no link counter can move
        // (busy/stalled/flits all require an occupied latch; armed link
        // faults only fire on a latched flit). Skipping the empty sweep over
        // every router x port keeps a drained mesh O(1) per cycle, so the
        // tile-phase savings of the event-driven schedule show up in
        // wall-clock time instead of drowning in idle router iteration.
        if self.moving == 0 {
            return;
        }
        let faults_armed = !self.link_faults.is_empty();

        // Phase A: deliver output latches across links.
        for idx in 0..self.routers.len() {
            for port in Port::ALL {
                let p = port as usize;
                let Some(&(_, free_at)) = self.latches[idx][p].as_ref() else {
                    continue;
                };
                if self.cycle < free_at {
                    // Still serializing across a narrow link.
                    self.link_stats[idx][p].busy += 1;
                    continue;
                }
                if faults_armed && self.take_due_fault(idx, p) {
                    // The flit is corrupted in flight; the downstream link
                    // check nacks it and the sender holds it latched for a
                    // bounded replay.
                    if let Some((_, fa)) = self.latches[idx][p].as_mut() {
                        *fa = self.cycle + RETRY_PENALTY;
                    }
                    self.stats.retransmits += 1;
                    self.link_stats[idx][p].busy += 1;
                    self.retransmit_events.push(RetransmitEvent {
                        cycle: self.cycle,
                        at: self.coord(idx),
                        port,
                    });
                    continue;
                }
                match self.link_dest(idx, port) {
                    None if port == Port::Local => {
                        // Ejection queues are consumed by the attached node
                        // every cycle; bound them generously.
                        if self.eject_qs[idx].len() < 8 * self.cfg.fifo_depth {
                            let (pkt, _) = self.latches[idx][p].take().unwrap();
                            self.eject_qs[idx].push_back(pkt);
                            self.moving -= 1;
                            self.link_stats[idx][p].busy += 1;
                            self.link_stats[idx][p].flits += 1;
                        } else {
                            self.link_stats[idx][p].stalled += 1;
                        }
                    }
                    None => unreachable!("packet latched on nonexistent link"),
                    Some((didx, dport)) => {
                        if self.routers[didx].inputs[dport as usize].len() < self.cfg.fifo_depth {
                            let (pkt, _) = self.latches[idx][p].take().unwrap();
                            self.routers[didx].inputs[dport as usize].push_back(pkt);
                            self.link_stats[idx][p].busy += 1;
                            self.link_stats[idx][p].flits += 1;
                        } else {
                            self.link_stats[idx][p].stalled += 1;
                        }
                    }
                }
            }
        }

        // Phase B: arbitrate input FIFO heads into free output latches.
        for idx in 0..self.routers.len() {
            let at = self.coord(idx);
            for out in Port::ALL {
                let o = out as usize;
                if self.latches[idx][o].is_some() {
                    continue;
                }
                // Round-robin over input ports whose head routes to `out`.
                let start = self.routers[idx].rr[o];
                let mut chosen = None;
                for k in 0..NPORTS {
                    let inp = (start + k) % NPORTS;
                    if let Some(head) = self.routers[idx].inputs[inp].front() {
                        if self.route_port(at, head.dst) == out {
                            chosen = Some(inp);
                            break;
                        }
                    }
                }
                if let Some(inp) = chosen {
                    let pkt = self.routers[idx].inputs[inp].pop_front().unwrap();
                    let free_at = self.cycle + u64::from(self.cfg.link_occupancy);
                    self.latches[idx][o] = Some((pkt, free_at));
                    self.routers[idx].rr[o] = (inp + 1) % NPORTS;
                }
            }
        }
    }

    /// Serializes all dynamic network state. `enc` encodes one payload;
    /// the static config is rebuilt from the machine configuration on
    /// restore.
    pub fn snap_save_with(
        &self,
        w: &mut hb_mem::SnapWriter,
        enc: &dyn Fn(&mut hb_mem::SnapWriter, &P),
    ) {
        let coord = |w: &mut hb_mem::SnapWriter, c: Coord| {
            w.u8(c.x);
            w.u8(c.y);
        };
        let pkt = |w: &mut hb_mem::SnapWriter, p: &Packet<P>| {
            coord(w, p.src);
            coord(w, p.dst);
            enc(w, &p.payload);
        };
        w.tag(b"NET0");
        w.usize(self.routers.len());
        for router in &self.routers {
            for q in &router.inputs {
                w.usize(q.len());
                for p in q {
                    pkt(w, p);
                }
            }
            for rr in router.rr {
                w.usize(rr);
            }
        }
        for latch in &self.latches {
            for slot in latch {
                if w.opt(slot.is_some()) {
                    let (p, free_at) = slot.as_ref().unwrap();
                    pkt(w, p);
                    w.u64(*free_at);
                }
            }
        }
        for stats in &self.link_stats {
            for s in stats {
                s.snap_save(w);
            }
        }
        for q in &self.eject_qs {
            w.usize(q.len());
            for p in q {
                pkt(w, p);
            }
        }
        w.u64(self.stats.injected);
        w.u64(self.stats.ejected);
        w.u64(self.stats.retransmits);
        w.u64(self.cycle);
        w.usize(self.link_faults.len());
        for &(cycle, idx, port) in &self.link_faults {
            w.u64(cycle);
            w.usize(idx);
            w.usize(port);
        }
        w.usize(self.retransmit_events.len());
        for e in &self.retransmit_events {
            w.u64(e.cycle);
            coord(w, e.at);
            w.u8(e.port as u8);
        }
    }

    /// Restores dynamic state into a freshly constructed network of the
    /// same shape; `moving` is recomputed from the decoded population.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation, a shape mismatch, or an
    /// out-of-range index.
    pub fn snap_load_with(
        &mut self,
        r: &mut hb_mem::SnapReader,
        dec: &dyn Fn(&mut hb_mem::SnapReader) -> Result<P, hb_mem::SnapError>,
    ) -> Result<(), hb_mem::SnapError> {
        use hb_mem::SnapError;
        let coord = |r: &mut hb_mem::SnapReader| -> Result<Coord, SnapError> {
            Ok(Coord::new(r.u8()?, r.u8()?))
        };
        let pkt = |r: &mut hb_mem::SnapReader| -> Result<Packet<P>, SnapError> {
            Ok(Packet {
                src: coord(r)?,
                dst: coord(r)?,
                payload: dec(r)?,
            })
        };
        r.expect_tag(b"NET0", "Network section")?;
        let n = self.routers.len();
        if r.usize()? != n {
            return Err(SnapError::Bad("Network router count mismatch"));
        }
        let mut moving = 0usize;
        for router in &mut self.routers {
            for q in &mut router.inputs {
                q.clear();
            }
            for q in &mut router.inputs {
                for _ in 0..r.seq_len()? {
                    q.push_back(pkt(r)?);
                    moving += 1;
                }
            }
            for rr in &mut router.rr {
                let v = r.usize()?;
                if v >= NPORTS {
                    return Err(SnapError::Bad("Network round-robin pointer out of range"));
                }
                *rr = v;
            }
        }
        for latch in &mut self.latches {
            for slot in latch.iter_mut() {
                *slot = if r.opt()? {
                    moving += 1;
                    Some((pkt(r)?, r.u64()?))
                } else {
                    None
                };
            }
        }
        for stats in &mut self.link_stats {
            for s in stats.iter_mut() {
                *s = LinkStats::snap_load(r)?;
            }
        }
        for q in &mut self.eject_qs {
            q.clear();
            for _ in 0..r.seq_len()? {
                q.push_back(pkt(r)?);
            }
        }
        self.moving = moving;
        self.stats = NetworkStats {
            injected: r.u64()?,
            ejected: r.u64()?,
            retransmits: r.u64()?,
        };
        self.cycle = r.u64()?;
        self.link_faults.clear();
        for _ in 0..r.seq_len()? {
            let cycle = r.u64()?;
            let idx = r.usize()?;
            let port = r.usize()?;
            if idx >= n || port >= NPORTS {
                return Err(SnapError::Bad("Network link fault out of range"));
            }
            self.link_faults.push((cycle, idx, port));
        }
        self.retransmit_events.clear();
        for _ in 0..r.seq_len()? {
            self.retransmit_events.push(RetransmitEvent {
                cycle: r.u64()?,
                at: coord(r)?,
                port: Port::from_index(r.u8()? as usize),
            });
        }
        Ok(())
    }

    /// Cumulative stats for the output link of (`at`, `port`).
    pub fn link_stats(&self, at: Coord, port: Port) -> LinkStats {
        self.link_stats[self.idx(at)][port as usize]
    }

    /// Cheap whole-network snapshot: cumulative counters summed over every
    /// output port of each router, indexed like the router array
    /// (row-major). One pass over the counter table, no allocation beyond
    /// the returned `Vec`; intended for periodic telemetry sampling.
    pub fn snapshot(&self) -> Vec<LinkStats> {
        self.link_stats
            .iter()
            .map(|ports| ports.iter().fold(LinkStats::default(), |acc, &s| acc + s))
            .collect()
    }

    /// Sum of stats over every eastward and westward link crossing the
    /// vertical cut between columns `x_boundary - 1` and `x_boundary`
    /// (mesh and Ruche links alike). This is the Cell-bisection measure of
    /// Figures 3 and 14.
    pub fn bisection_stats(&self, x_boundary: u8) -> LinkStats {
        let mut total = LinkStats::default();
        self.for_each_bisection_link(x_boundary, |idx, port| {
            total = total + self.link_stats[idx][port as usize];
        });
        total
    }

    /// Number of distinct links crossing the vertical cut at `x_boundary`
    /// (both directions). Useful to normalize bisection utilization.
    pub fn bisection_link_count(&self, x_boundary: u8) -> usize {
        let mut n = 0;
        self.for_each_bisection_link(x_boundary, |_, _| n += 1);
        n
    }

    fn for_each_bisection_link(&self, x_boundary: u8, mut f: impl FnMut(usize, Port)) {
        let rf = self.cfg.ruche_factor;
        for idx in 0..self.routers.len() {
            let c = self.coord(idx);
            for port in [Port::East, Port::West, Port::RucheEast, Port::RucheWest] {
                if self.link_dest(idx, port).is_none() {
                    continue;
                }
                let crosses = match port {
                    Port::East => c.x + 1 == x_boundary,
                    Port::West => c.x == x_boundary,
                    Port::RucheEast => c.x < x_boundary && c.x + rf >= x_boundary,
                    Port::RucheWest => c.x >= x_boundary && c.x < x_boundary + rf,
                    _ => false,
                };
                if crosses {
                    f(idx, port);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(w: u8, h: u8) -> Network<u64> {
        Network::new(NetworkConfig {
            width: w,
            height: h,
            ruche_factor: 0,
            order: RouteOrder::XThenY,
            fifo_depth: 2,
            link_occupancy: 1,
        })
    }

    fn ruche(w: u8, h: u8) -> Network<u64> {
        Network::new(NetworkConfig {
            width: w,
            height: h,
            ruche_factor: 3,
            order: RouteOrder::XThenY,
            fifo_depth: 2,
            link_occupancy: 1,
        })
    }

    fn deliver(net: &mut Network<u64>, src: Coord, dst: Coord, payload: u64) -> u64 {
        assert!(net.inject(src, Packet { src, dst, payload }));
        let start = net.cycle();
        for _ in 0..10_000 {
            net.tick();
            if let Some(p) = net.eject(dst) {
                assert_eq!(p.payload, payload);
                return net.cycle() - start;
            }
        }
        panic!("packet {src}->{dst} never arrived");
    }

    #[test]
    fn flit_counters_count_deliveries_not_serialization() {
        // With a 4-cycle link occupancy, a single packet holds each link
        // busy for several cycles but traverses it exactly once.
        let mut net: Network<u64> = Network::new(NetworkConfig {
            width: 4,
            height: 1,
            ruche_factor: 0,
            order: RouteOrder::XThenY,
            fifo_depth: 2,
            link_occupancy: 4,
        });
        deliver(&mut net, Coord::new(0, 0), Coord::new(3, 0), 7);
        let east = net.link_stats(Coord::new(0, 0), Port::East);
        assert_eq!(east.flits, 1, "one packet crossed the first east link");
        assert!(
            east.busy > east.flits,
            "serialization cycles must exceed flit count: {east:?}"
        );
        // The snapshot sums ports per router and must agree with the
        // per-link accessors.
        let snap = net.snapshot();
        assert_eq!(snap.len(), 4);
        let r0: LinkStats = Port::ALL.into_iter().fold(LinkStats::default(), |acc, p| {
            acc + net.link_stats(Coord::new(0, 0), p)
        });
        assert_eq!(snap[0], r0);
        // Deltas compose: total - total == zero.
        assert_eq!(r0 - r0, LinkStats::default());
        assert_eq!(east.idle(net.cycle()), net.cycle() - east.busy);
    }

    #[test]
    fn self_delivery() {
        let mut net = mesh(4, 4);
        let c = Coord::new(2, 2);
        let lat = deliver(&mut net, c, c, 9);
        assert!(lat <= 3, "self delivery took {lat} cycles");
    }

    #[test]
    fn corner_to_corner_latency_scales_with_hops() {
        let mut net = mesh(8, 8);
        let lat = deliver(&mut net, Coord::new(0, 0), Coord::new(7, 7), 1);
        // 14 hops; each hop is one latch+link cycle, plus injection/ejection.
        assert!((14..=20).contains(&lat), "latency {lat}");
    }

    #[test]
    fn ruche_links_shorten_horizontal_trips() {
        let mut m = mesh(16, 4);
        let mut r = ruche(16, 4);
        let (src, dst) = (Coord::new(0, 0), Coord::new(15, 0));
        let lm = deliver(&mut m, src, dst, 1);
        let lr = deliver(&mut r, src, dst, 1);
        assert!(
            lr + 4 <= lm,
            "ruche latency {lr} not clearly better than mesh {lm}"
        );
    }

    #[test]
    fn ruche_routing_is_exact() {
        // Every (src, dst) pair must arrive, including overshoot-prone ones.
        let mut net = ruche(16, 2);
        for sx in [0u8, 1, 7, 13, 15] {
            for dxx in [0u8, 2, 3, 5, 14, 15] {
                let src = Coord::new(sx, 0);
                let dst = Coord::new(dxx, 1);
                deliver(&mut net, src, dst, u64::from(sx) * 100 + u64::from(dxx));
            }
        }
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let net = mesh(4, 4);
        assert_eq!(
            net.route_port(Coord::new(0, 0), Coord::new(3, 3)),
            Port::East
        );
        let net2: Network<u64> = Network::new(NetworkConfig {
            width: 4,
            height: 4,
            ruche_factor: 0,
            order: RouteOrder::YThenX,
            fifo_depth: 2,
            link_occupancy: 1,
        });
        assert_eq!(
            net2.route_port(Coord::new(0, 0), Coord::new(3, 3)),
            Port::South
        );
    }

    #[test]
    fn packet_conservation_under_load() {
        let mut net = mesh(4, 4);
        let mut injected = 0u64;
        let mut ejected = 0u64;
        let mut seed = 12345u64;
        let mut rand = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u8
        };
        for _ in 0..2000 {
            let src = Coord::new(rand() % 4, rand() % 4);
            let dst = Coord::new(rand() % 4, rand() % 4);
            if net.inject(
                src,
                Packet {
                    src,
                    dst,
                    payload: injected,
                },
            ) {
                injected += 1;
            }
            net.tick();
            for y in 0..4 {
                for x in 0..4 {
                    while net.eject(Coord::new(x, y)).is_some() {
                        ejected += 1;
                    }
                }
            }
        }
        // Drain.
        for _ in 0..500 {
            net.tick();
            for y in 0..4 {
                for x in 0..4 {
                    while net.eject(Coord::new(x, y)).is_some() {
                        ejected += 1;
                    }
                }
            }
        }
        assert_eq!(injected, ejected, "packets lost or duplicated");
        assert!(net.is_drained());
    }

    #[test]
    fn packets_arrive_at_correct_destination() {
        let mut net = ruche(8, 8);
        let mut outstanding = std::collections::HashMap::new();
        let mut id = 0u64;
        for sy in 0..8u8 {
            for dy in 0..8u8 {
                let src = Coord::new(sy % 8, sy);
                let dst = Coord::new((sy + dy) % 8, dy);
                while !net.inject(
                    src,
                    Packet {
                        src,
                        dst,
                        payload: id,
                    },
                ) {
                    net.tick();
                    drain_check(&mut net, &mut outstanding);
                }
                outstanding.insert(id, dst);
                id += 1;
            }
        }
        for _ in 0..2000 {
            net.tick();
            drain_check(&mut net, &mut outstanding);
            if outstanding.is_empty() {
                return;
            }
        }
        panic!("{} packets never arrived", outstanding.len());
    }

    fn drain_check(
        net: &mut Network<u64>,
        outstanding: &mut std::collections::HashMap<u64, Coord>,
    ) {
        for y in 0..net.config().height {
            for x in 0..net.config().width {
                let here = Coord::new(x, y);
                while let Some(p) = net.eject(here) {
                    let expect = outstanding.remove(&p.payload).expect("unknown packet");
                    assert_eq!(expect, here, "packet {} misrouted", p.payload);
                }
            }
        }
    }

    #[test]
    fn bisection_counts_ruche_links() {
        let mesh_links = mesh(16, 4).bisection_link_count(8);
        let ruche_links = ruche(16, 4).bisection_link_count(8);
        // Mesh: E+W per row = 2*4 = 8. Ruche adds 3 eastward + 3 westward
        // crossings per row.
        assert_eq!(mesh_links, 8);
        assert_eq!(ruche_links, 8 + 2 * 3 * 4);
        // The paper: Ruche-3 gives 4x the bisection bandwidth of the mesh.
        assert_eq!(ruche_links, 4 * mesh_links);
    }

    #[test]
    fn link_fault_replays_the_flit_with_bounded_delay() {
        let (src, dst) = (Coord::new(0, 0), Coord::new(3, 0));
        let mut clean = mesh(4, 1);
        let baseline = deliver(&mut clean, src, dst, 5);

        let mut faulty = mesh(4, 1);
        // Corrupt the first flit crossing the east link out of (1,0).
        faulty.schedule_link_fault(0, Coord::new(1, 0), Port::East);
        let lat = deliver(&mut faulty, src, dst, 5);
        assert_eq!(
            lat,
            baseline + RETRY_PENALTY,
            "replay must cost exactly the retry penalty"
        );
        assert_eq!(faulty.stats().retransmits, 1);
        let evs = faulty.drain_retransmit_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at, Coord::new(1, 0));
        assert_eq!(evs[0].port, Port::East);
        assert!(faulty.drain_retransmit_events().is_empty());
        // The packet arrived exactly once despite the corruption.
        assert!(faulty.is_drained());
    }

    #[test]
    fn fault_on_an_idle_link_stays_armed_and_is_masked() {
        let mut net = mesh(4, 1);
        net.schedule_link_fault(0, Coord::new(2, 0), Port::West);
        // Traffic that never crosses the faulted link is untouched.
        deliver(&mut net, Coord::new(0, 0), Coord::new(3, 0), 1);
        assert_eq!(net.stats().retransmits, 0);
        // The armed fault fires on the first westward crossing.
        deliver(&mut net, Coord::new(3, 0), Coord::new(0, 0), 2);
        assert_eq!(net.stats().retransmits, 1);
    }

    #[test]
    fn conservation_holds_under_link_faults() {
        let mut net = mesh(4, 4);
        for c in 0..64 {
            net.schedule_link_fault(c, Coord::new((c % 4) as u8, (c / 16) as u8), Port::East);
        }
        let mut injected = 0u64;
        let mut ejected = 0u64;
        let mut seed = 99u64;
        let mut rand = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u8
        };
        for _ in 0..1000 {
            let src = Coord::new(rand() % 4, rand() % 4);
            let dst = Coord::new(rand() % 4, rand() % 4);
            if net.inject(
                src,
                Packet {
                    src,
                    dst,
                    payload: injected,
                },
            ) {
                injected += 1;
            }
            net.tick();
            for y in 0..4 {
                for x in 0..4 {
                    while net.eject(Coord::new(x, y)).is_some() {
                        ejected += 1;
                    }
                }
            }
        }
        for _ in 0..500 {
            net.tick();
            for y in 0..4 {
                for x in 0..4 {
                    while net.eject(Coord::new(x, y)).is_some() {
                        ejected += 1;
                    }
                }
            }
        }
        assert_eq!(injected, ejected, "retransmit lost or duplicated packets");
        assert!(net.is_drained());
        assert!(net.stats().retransmits > 0, "no scheduled fault ever fired");
    }

    #[test]
    fn bisection_traffic_is_counted() {
        let mut net = mesh(8, 2);
        deliver(&mut net, Coord::new(0, 0), Coord::new(7, 0), 1);
        let stats = net.bisection_stats(4);
        assert!(stats.busy >= 1);
    }
}
