//! Register dataflow over the CFG: def/use extraction, initialized-register
//! analysis (use-before-def), backward liveness (dead writes), and
//! unreachable-block detection.
//!
//! Registers are tracked in a 64-bit mask: bits 0–31 are GPRs `x0..x31`,
//! bits 32–63 are FPRs `f0..f31`. `x0` (zero) is never a def or a use.

use crate::cfg::{Cfg, Terminator};
use crate::{Diagnostic, Rule, Severity};
use hb_isa::{FpOp, Fpr, Gpr, Instr};

/// Bit index of a GPR in a register mask.
#[inline]
fn gbit(r: Gpr) -> u64 {
    1u64 << r.index()
}

/// Bit index of an FPR in a register mask.
#[inline]
fn fbit(r: Fpr) -> u64 {
    1u64 << (32 + r.index())
}

fn gname(bit: u32) -> String {
    if bit < 32 {
        Gpr::from_index(bit as u8).abi_name().to_owned()
    } else {
        Fpr::from_index((bit - 32) as u8).abi_name().to_owned()
    }
}

/// The registers an instruction reads and writes, as bit masks.
///
/// `x0` is excluded from both sides: writes to it are discarded by the
/// hardware and its value is always defined.
pub fn defs_uses(instr: &Instr) -> (u64, u64) {
    let g = |r: Gpr| if r == Gpr::Zero { 0 } else { gbit(r) };
    match *instr {
        Instr::Lui { rd, .. } | Instr::Auipc { rd, .. } => (g(rd), 0),
        Instr::Jal { rd, .. } => (g(rd), 0),
        Instr::Jalr { rd, rs1, .. } => (g(rd), g(rs1)),
        Instr::Branch { rs1, rs2, .. } => (0, g(rs1) | g(rs2)),
        Instr::Load { rd, rs1, .. } => (g(rd), g(rs1)),
        Instr::Store { rs1, rs2, .. } => (0, g(rs1) | g(rs2)),
        Instr::OpImm { rd, rs1, .. } => (g(rd), g(rs1)),
        Instr::Op { rd, rs1, rs2, .. } => (g(rd), g(rs1) | g(rs2)),
        Instr::Fence | Instr::Ecall | Instr::Ebreak => (0, 0),
        Instr::Amo { rd, rs1, rs2, .. } => (g(rd), g(rs1) | g(rs2)),
        Instr::LrW { rd, rs1, .. } => (g(rd), g(rs1)),
        Instr::ScW { rd, rs1, rs2, .. } => (g(rd), g(rs1) | g(rs2)),
        Instr::Flw { rd, rs1, .. } => (fbit(rd), g(rs1)),
        Instr::Fsw { rs1, rs2, .. } => (0, g(rs1) | fbit(rs2)),
        Instr::FpOp { op, rd, rs1, rs2 } => {
            // fsqrt.s encodes rs2 as a don't-care field; reading it would
            // make every kernel's first sqrt a false use-before-def.
            let uses = if op == FpOp::Sqrt {
                fbit(rs1)
            } else {
                fbit(rs1) | fbit(rs2)
            };
            (fbit(rd), uses)
        }
        Instr::Fma {
            rd, rs1, rs2, rs3, ..
        } => (fbit(rd), fbit(rs1) | fbit(rs2) | fbit(rs3)),
        Instr::FpCmp { rd, rs1, rs2, .. } => (g(rd), fbit(rs1) | fbit(rs2)),
        Instr::FcvtWS { rd, rs1 } | Instr::FcvtWuS { rd, rs1 } => (g(rd), fbit(rs1)),
        Instr::FcvtSW { rd, rs1 } | Instr::FcvtSWu { rd, rs1 } => (fbit(rd), g(rs1)),
        Instr::FmvXW { rd, rs1 } => (g(rd), fbit(rs1)),
        Instr::FmvWX { rd, rs1 } => (fbit(rd), g(rs1)),
    }
}

/// Registers guaranteed to hold meaningful values when `Tile::launch` starts
/// a program: `zero`, `sp` (top of SPM) and the kernel arguments `a0..a7`.
///
/// `Tile::launch` zeroes every other register, so reading one is not
/// undefined behaviour in the simulator — but it is almost always a kernel
/// bug, because no meaningful value was ever placed there.
pub fn entry_defined() -> u64 {
    let mut m = gbit(Gpr::Zero) | gbit(Gpr::Sp);
    for r in [
        Gpr::A0,
        Gpr::A1,
        Gpr::A2,
        Gpr::A3,
        Gpr::A4,
        Gpr::A5,
        Gpr::A6,
        Gpr::A7,
    ] {
        m |= gbit(r);
    }
    m
}

/// Runs the forward initialized-registers analysis and reports
/// use-before-def.
///
/// Two lattices run side by side: *may-init* (union over predecessors) and
/// *must-init* (intersection). A use outside may-init is uninitialized on
/// every path — an [`Severity::Error`]. A use outside must-init but inside
/// may-init is uninitialized on *some* path; since the analysis is
/// path-insensitive that may be a false positive, so it is reported as a
/// [`Severity::Warning`].
pub fn check_use_before_def(cfg: &Cfg, instrs: &[Instr], diags: &mut Vec<Diagnostic>) {
    let n = cfg.blocks.len();
    if n == 0 {
        return;
    }
    let entry = entry_defined();
    // Per-block gen masks (defs anywhere in the block).
    let gen: Vec<u64> = cfg
        .blocks
        .iter()
        .map(|b| {
            instrs[b.start..b.end]
                .iter()
                .fold(0, |m, instr| m | defs_uses(instr).0)
        })
        .collect();

    let preds = cfg.preds();
    let reachable = cfg.reachable();
    let rpo = cfg.reverse_postorder();

    let mut may_in = vec![0u64; n];
    let mut must_in = vec![u64::MAX; n];
    may_in[0] = entry;
    must_in[0] = entry;

    loop {
        let mut changed = false;
        for &b in &rpo {
            if b != 0 {
                let mut may = 0u64;
                let mut must = u64::MAX;
                for &p in &preds[b] {
                    if !reachable[p] {
                        continue;
                    }
                    may |= may_in[p] | gen[p];
                    must &= must_in[p] | gen[p];
                }
                if preds[b].is_empty() {
                    must = 0;
                }
                if may != may_in[b] || must != must_in[b] {
                    may_in[b] = may;
                    must_in[b] = must;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (bi, b) in cfg.blocks.iter().enumerate() {
        if !reachable[bi] {
            continue;
        }
        let mut may = may_in[bi];
        let mut must = must_in[bi];
        for (off, instr) in instrs[b.start..b.end].iter().enumerate() {
            let i = b.start + off;
            let (d, u) = defs_uses(instr);
            let never = u & !may;
            let maybe = u & may & !must;
            for bit in 0..64 {
                let m = 1u64 << bit;
                if never & m != 0 {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        pc: Some(cfg.pc_of(i)),
                        rule: Rule::UseBeforeDef,
                        message: format!(
                            "register {} is read but never written on any path to this point \
                             (launch zeroes it, so this reads 0)",
                            gname(bit)
                        ),
                    });
                } else if maybe & m != 0 {
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        pc: Some(cfg.pc_of(i)),
                        rule: Rule::UseBeforeDef,
                        message: format!(
                            "register {} may be read before it is written on some path",
                            gname(bit)
                        ),
                    });
                }
            }
            may |= d;
            must |= d;
        }
    }
}

/// Backward liveness; reports writes whose value is never read.
///
/// ALU/move results that die are warnings. Dead *loads* are only
/// informational: a load whose value is discarded still warms the remote
/// path and is a recognized prefetch idiom. AMO results are exempt — the
/// memory side effect is the point.
pub fn check_dead_writes(cfg: &Cfg, instrs: &[Instr], diags: &mut Vec<Diagnostic>) {
    let n = cfg.blocks.len();
    if n == 0 {
        return;
    }
    let reachable = cfg.reachable();

    // Per-block use/def for backward analysis.
    let mut use_b = vec![0u64; n];
    let mut def_b = vec![0u64; n];
    for (bi, b) in cfg.blocks.iter().enumerate() {
        for instr in &instrs[b.start..b.end] {
            let (d, u) = defs_uses(instr);
            use_b[bi] |= u & !def_b[bi];
            def_b[bi] |= d;
        }
    }

    let mut live_out = vec![0u64; n];
    let mut live_in = vec![0u64; n];
    // Indirect jumps could go anywhere: everything is live. Exits kill all.
    let all_live = u64::MAX;
    loop {
        let mut changed = false;
        for bi in (0..n).rev() {
            let b = &cfg.blocks[bi];
            let mut out = match b.term {
                Terminator::Indirect => all_live,
                Terminator::Exit | Terminator::OffEnd => 0,
                _ => 0,
            };
            for &s in &b.succs {
                out |= live_in[s];
            }
            let inn = use_b[bi] | (out & !def_b[bi]);
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (bi, b) in cfg.blocks.iter().enumerate() {
        if !reachable[bi] {
            continue;
        }
        let mut live = live_out[bi];
        // Walk backwards through the block.
        for i in (b.start..b.end).rev() {
            let (d, u) = defs_uses(&instrs[i]);
            if d != 0 && d & live == 0 {
                let is_load = matches!(instrs[i], Instr::Load { .. } | Instr::Flw { .. });
                let is_amo = matches!(
                    instrs[i],
                    Instr::Amo { .. } | Instr::LrW { .. } | Instr::ScW { .. }
                );
                let is_link = matches!(instrs[i], Instr::Jal { .. } | Instr::Jalr { .. });
                if !is_amo && !is_link {
                    let bit = d.trailing_zeros();
                    diags.push(Diagnostic {
                        severity: if is_load {
                            Severity::Info
                        } else {
                            Severity::Warning
                        },
                        pc: Some(cfg.pc_of(i)),
                        rule: Rule::DeadWrite,
                        message: if is_load {
                            format!(
                                "loaded value in {} is never read (prefetch, or dead load?)",
                                gname(bit)
                            )
                        } else {
                            format!("value written to {} is never read", gname(bit))
                        },
                    });
                }
            }
            live &= !d;
            live |= u;
        }
    }
}

/// Reports blocks that no path from the entry reaches, and control flow
/// that leaves the program image.
pub fn check_reachability(cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let reachable = cfg.reachable();
    for (bi, b) in cfg.blocks.iter().enumerate() {
        if !reachable[bi] {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                pc: Some(cfg.pc_of(b.start)),
                rule: Rule::UnreachableBlock,
                message: format!(
                    "block at {:#x} is unreachable from the entry point",
                    cfg.pc_of(b.start)
                ),
            });
            continue;
        }
        match b.term {
            Terminator::OffEnd => diags.push(Diagnostic {
                severity: Severity::Error,
                pc: Some(cfg.pc_of(b.end - 1)),
                rule: Rule::FallsOffEnd,
                message: "execution can run past the last instruction of the program \
                          (missing ecall or jump?)"
                    .to_owned(),
            }),
            Terminator::Indirect => diags.push(Diagnostic {
                severity: Severity::Info,
                pc: Some(cfg.pc_of(b.end - 1)),
                rule: Rule::IndirectJump,
                message: "indirect jump: static analyses cannot follow this edge".to_owned(),
            }),
            _ => {}
        }
    }
    for &i in &cfg.wild_targets {
        diags.push(Diagnostic {
            severity: Severity::Error,
            pc: Some(cfg.pc_of(i)),
            rule: Rule::FallsOffEnd,
            message: "branch or jump target lies outside the program image".to_owned(),
        });
    }
}
