//! Quickstart: assemble a kernel, run it on a simulated HammerBlade Cell,
//! and read the results back — the whole host/device workflow in ~50
//! lines.
//!
//! Run with: `cargo run --release --example quickstart`

use hammerblade::asm::Assembler;
use hammerblade::core::{pgas, HbOps, Machine, MachineConfig};
use hammerblade::isa::Gpr::*;
use std::sync::Arc;

fn main() {
    // A full 16x8 HammerBlade Cell: 128 RV32IMAF tiles, 32 cache banks,
    // Ruche networks, one HBM2 pseudo-channel.
    let mut machine = Machine::new(MachineConfig::baseline_16x8());

    // Device kernel: out[i] = i * i, parallelized over every tile with a
    // rank-strided loop (SPMD, like a CUDA grid-stride loop).
    let mut a = Assembler::new();
    a.tg_rank(S0, T6); // s0 = this tile's rank
    a.tg_size(S1, T6); // s1 = total tiles
    let loop_top = a.new_label();
    let done = a.new_label();
    a.bind(loop_top);
    a.bge(S0, A1, done); // while i < n
    a.mul(T0, S0, S0); // t0 = i * i
    a.slli(T1, S0, 2);
    a.add(T1, A0, T1);
    a.sw(T0, T1, 0); // out[i] = t0
    a.add(S0, S0, S1); // i += nthreads
    a.j(loop_top);
    a.bind(done);
    a.fence(); // drain outstanding stores
    a.ecall(); // tile finished
    let program = Arc::new(a.assemble(0).expect("assembles"));
    println!("kernel:\n{}", program.disassemble());

    // Host side: allocate device memory, launch, run, read back.
    const N: u32 = 1000;
    let out = machine.cell_mut(0).alloc(N * 4, 64);
    machine.launch(0, &program, &[pgas::local_dram(out), N]);
    let summary = machine.run(10_000_000).expect("kernel completes");
    machine.cell_mut(0).flush_caches();

    let results = machine.cell(0).dram().read_u32_slice(out, N as usize);
    assert!((0..N).all(|i| results[i as usize] == i * i));
    println!(
        "computed {N} squares on {} tiles in {} cycles ({:.1}% core utilization)",
        machine.config().cell_dim.tiles(),
        summary.cycles,
        summary.core.utilization() * 100.0
    );
}
