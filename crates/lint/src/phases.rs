//! Cross-tile barrier-phase conflict analysis (the static half of the race
//! checker; `hb-core`'s `race` module is the dynamic half).
//!
//! The tile-group barrier splits a kernel's execution into **phases**: two
//! accesses to the same shared word from different tiles are ordered only
//! if a barrier (with the producer's stores fenced) separates them. This
//! module re-interprets the program with a *rank-affine* value domain —
//! every register is `arg? + base + coeff * rank`, where `rank` is the
//! symbolic `TG_RANK` of the executing tile — assigns each memory access a
//! barrier phase using the same acyclic-skeleton propagation as the
//! `barrier-mismatch` check, and reports pairs that
//!
//! 1. may execute in the same phase (including re-executions of a phase by
//!    a loop whose body joins `b` barriers per iteration: phases congruent
//!    mod `b` meet),
//! 2. can touch overlapping words for some pair of *distinct* ranks
//!    `r != r'`, and
//! 3. are not both reads and not both AMOs (atomics commute in the bank
//!    FIFO and are the sanctioned same-phase communication idiom).
//!
//! A store posted without a fence before a barrier join does not retire at
//! the join, so its phase set is widened with `phase(join) + 1` — the
//! static mirror of the dynamic sanitizer's *extended* accesses.
//!
//! The analysis is deliberately **optimistic** where it cannot reason:
//! accesses whose address is not rank-affine (data-dependent indices,
//! tile-coordinate arithmetic) are skipped, and two different launch
//! arguments are assumed to name disjoint regions (`restrict` semantics).
//! It understands one guard idiom: a branch comparing `rank` against a
//! constant pins the rank on the dominated side, so `if rank == 0`
//! finalization code does not self-conflict. Tiles are assumed to run as
//! one full-cell group with origin (0, 0), which is how every harness in
//! this repository launches.

use crate::cfg::{Cfg, Terminator};
use crate::{Diagnostic, LintConfig, Rule, Severity};
use hb_asm::Program;
use hb_core::pgas::csr;
pub use hb_core::AccessKind;
use hb_isa::{Gpr, Instr, OpImmOp, OpOp, INSTR_BYTES};
use std::collections::{BTreeSet, HashSet};

/// A statically-found same-phase conflicting pair.
///
/// `pc_a` is the earlier instruction in program order (`pc_a <= pc_b`;
/// equal when one rank-indexed instruction conflicts with itself across
/// ranks, e.g. every tile storing to the same word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseConflict {
    pub pc_a: u32,
    pub kind_a: AccessKind,
    pub pc_b: u32,
    pub kind_b: AccessKind,
    /// The (skeleton-numbered) barrier phase in which the accesses meet.
    pub phase: u32,
    /// Which shared space the overlapping words live in.
    pub space: &'static str,
}

/// Rank-affine abstract value: `sym + base + coeff * rank` (all u32
/// arithmetic wrapping), where `sym` is one launch argument treated as an
/// opaque region pointer. Plain constants are `Aff` with `sym: None,
/// coeff: 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    Bot,
    Aff {
        sym: Option<u8>,
        base: u32,
        coeff: u32,
    },
    Top,
}

impl AVal {
    const fn konst(c: u32) -> AVal {
        AVal::Aff {
            sym: None,
            base: c,
            coeff: 0,
        }
    }

    const RANK: AVal = AVal::Aff {
        sym: None,
        base: 0,
        coeff: 1,
    };

    fn join(self, other: AVal) -> AVal {
        match (self, other) {
            (AVal::Bot, v) | (v, AVal::Bot) => v,
            (a, b) if a == b => a,
            _ => AVal::Top,
        }
    }

    /// Pure constant (no symbol, no rank dependence).
    fn as_const(self) -> Option<u32> {
        match self {
            AVal::Aff {
                sym: None,
                base,
                coeff: 0,
            } => Some(base),
            _ => None,
        }
    }

    fn add(self, other: AVal) -> AVal {
        let (
            AVal::Aff {
                sym: sa,
                base: ba,
                coeff: ca,
            },
            AVal::Aff {
                sym: sb,
                base: bb,
                coeff: cb,
            },
        ) = (self, other)
        else {
            return AVal::Top;
        };
        let sym = match (sa, sb) {
            (None, s) | (s, None) => s,
            (Some(_), Some(_)) => return AVal::Top,
        };
        AVal::Aff {
            sym,
            base: ba.wrapping_add(bb),
            coeff: ca.wrapping_add(cb),
        }
    }

    fn sub(self, other: AVal) -> AVal {
        let (
            AVal::Aff {
                sym: sa,
                base: ba,
                coeff: ca,
            },
            AVal::Aff {
                sym: sb,
                base: bb,
                coeff: cb,
            },
        ) = (self, other)
        else {
            return AVal::Top;
        };
        let sym = match (sa, sb) {
            (s, None) => s,
            (Some(a), Some(b)) if a == b => None,
            _ => return AVal::Top,
        };
        AVal::Aff {
            sym,
            base: ba.wrapping_sub(bb),
            coeff: ca.wrapping_sub(cb),
        }
    }

    fn shl(self, sh: u32) -> AVal {
        match self {
            AVal::Aff {
                sym: None,
                base,
                coeff,
            } => AVal::Aff {
                sym: None,
                base: base.wrapping_shl(sh),
                coeff: coeff.wrapping_shl(sh),
            },
            v if sh == 0 => v,
            _ => AVal::Top,
        }
    }

    fn mul(self, other: AVal) -> AVal {
        let scale = |v: AVal, k: u32| match v {
            AVal::Aff {
                sym: None,
                base,
                coeff,
            } => AVal::Aff {
                sym: None,
                base: base.wrapping_mul(k),
                coeff: coeff.wrapping_mul(k),
            },
            v if k == 1 => v,
            _ => AVal::Top,
        };
        match (self.as_const(), other.as_const()) {
            (_, Some(k)) => scale(self, k),
            (Some(k), _) => scale(other, k),
            _ => AVal::Top,
        }
    }
}

/// Rank constraint along a path: `Eq(c)` after flowing through the
/// `rank == c` side of a guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pin {
    Bot,
    Eq(u32),
    Any,
}

impl Pin {
    fn join(self, other: Pin) -> Pin {
        match (self, other) {
            (Pin::Bot, p) | (p, Pin::Bot) => p,
            (a, b) if a == b => a,
            _ => Pin::Any,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct PState {
    regs: [AVal; 32],
    pin: Pin,
    /// Instruction indices of possibly-remote writes posted since the last
    /// fence (sorted, deduplicated). These are what an unfenced barrier
    /// join leaks into the next phase.
    unfenced: Vec<usize>,
}

impl PState {
    fn entry(lc: &LintConfig) -> PState {
        // Mirror `Tile::launch`: registers zeroed, sp at the SPM top,
        // a0..a7 carry the kernel arguments (modelled as opaque symbols).
        let mut regs = [AVal::konst(0); 32];
        regs[Gpr::Sp.index() as usize] = AVal::konst(lc.spm_bytes);
        for (i, r) in regs[10..=17].iter_mut().enumerate() {
            *r = AVal::Aff {
                sym: Some(i as u8),
                base: 0,
                coeff: 0,
            };
        }
        PState {
            regs,
            pin: Pin::Bot,
            unfenced: Vec::new(),
        }
    }

    fn join(&self, other: &PState) -> PState {
        let mut regs = [AVal::Bot; 32];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = self.regs[i].join(other.regs[i]);
        }
        let mut unfenced = self.unfenced.clone();
        for &i in &other.unfenced {
            if let Err(at) = unfenced.binary_search(&i) {
                unfenced.insert(at, i);
            }
        }
        PState {
            regs,
            pin: self.pin.join(other.pin),
            unfenced,
        }
    }

    fn get(&self, r: Gpr) -> AVal {
        self.regs[r.index() as usize]
    }

    fn set(&mut self, r: Gpr, v: AVal) {
        if r != Gpr::Zero {
            self.regs[r.index() as usize] = v;
        }
    }
}

/// One shared-memory access with a rank-affine address.
#[derive(Debug, Clone)]
struct Acc {
    idx: usize,
    kind: AccessKind,
    width: u32,
    sym: Option<u8>,
    base: u32,
    coeff: u32,
    pin: Option<u32>,
    /// Skeleton phases this access can execute in (the block phase plus
    /// `join+1` extensions for unfenced writes).
    phases: BTreeSet<u32>,
    /// Barrier joins per iteration of each loop whose body re-executes
    /// this access.
    periods: Vec<u32>,
}

/// What a reporting walk over one block produces.
#[derive(Default)]
struct Collect {
    /// (instruction index, kind, width, address, pin at the access)
    accs: Vec<(usize, AccessKind, u32, AVal, Option<u32>)>,
    /// Barrier-join instruction indices.
    barriers: Vec<usize>,
    /// (join instruction index, unfenced write indices at the join)
    leaks: Vec<(usize, Vec<usize>)>,
}

/// Executes one basic block from `st`, optionally collecting accesses.
fn exec_block(
    instrs: &[Instr],
    cfg: &Cfg,
    b: usize,
    st: &mut PState,
    lc: &LintConfig,
    mut collect: Option<&mut Collect>,
) {
    let block = &cfg.blocks[b];
    for (i, &instr) in instrs.iter().enumerate().take(block.end).skip(block.start) {
        let pin = match st.pin {
            Pin::Eq(c) => Some(c),
            _ => None,
        };
        let access = |st: &mut PState,
                      collect: &mut Option<&mut Collect>,
                      kind: AccessKind,
                      width: u32,
                      addr: AVal| {
            // Only rank-affine, non-CSR data addresses are analysable.
            let AVal::Aff { sym, base, coeff } = addr else {
                return;
            };
            if sym.is_none() && coeff == 0 && (0x1000..0x1100).contains(&base) {
                // CSR window: barrier joins are handled by the caller,
                // the rest is not shared memory.
                return;
            }
            if kind.is_write() && !is_local_spm(addr, width, lc) {
                // A posted write a fence would wait for.
                if let Err(at) = st.unfenced.binary_search(&i) {
                    st.unfenced.insert(at, i);
                }
            }
            if let Some(c) = collect {
                c.accs.push((i, kind, width, addr, pin));
            }
        };
        match instr {
            Instr::Lui { rd, imm } => st.set(rd, AVal::konst((imm as u32) << 12)),
            Instr::Auipc { rd, imm } => {
                st.set(
                    rd,
                    AVal::konst(cfg.pc_of(i).wrapping_add((imm as u32) << 12)),
                );
            }
            Instr::Jal { rd, .. } | Instr::Jalr { rd, .. } => {
                st.set(rd, AVal::konst(cfg.pc_of(i).wrapping_add(INSTR_BYTES)));
            }
            Instr::Branch { .. } => {}
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let addr = st.get(rs1).add(AVal::konst(offset as u32));
                let loaded = match addr.as_const() {
                    Some(c) if c == csr::TG_RANK || c == csr::TG_LIVE_RANK => AVal::RANK,
                    Some(c) if (csr::ARG0..csr::ARG0 + 32).contains(&c) => AVal::Aff {
                        sym: Some(((c - csr::ARG0) / 4) as u8),
                        base: 0,
                        coeff: 0,
                    },
                    Some(c) if (0x1000..0x1100).contains(&c) => AVal::Top,
                    _ => {
                        access(st, &mut collect, AccessKind::Read, width.bytes(), addr);
                        AVal::Top
                    }
                };
                st.set(rd, loaded);
            }
            Instr::Flw { rs1, offset, .. } => {
                let addr = st.get(rs1).add(AVal::konst(offset as u32));
                access(st, &mut collect, AccessKind::Read, 4, addr);
            }
            Instr::Store {
                width, rs1, offset, ..
            } => {
                let addr = st.get(rs1).add(AVal::konst(offset as u32));
                if addr.as_const() == Some(csr::BARRIER) {
                    if let Some(c) = &mut collect {
                        c.barriers.push(i);
                        c.leaks.push((i, st.unfenced.clone()));
                    }
                } else {
                    access(st, &mut collect, AccessKind::Write, width.bytes(), addr);
                }
            }
            Instr::Fsw { rs1, offset, .. } => {
                let addr = st.get(rs1).add(AVal::konst(offset as u32));
                access(st, &mut collect, AccessKind::Write, 4, addr);
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = st.get(rs1);
                let v = match op {
                    OpImmOp::Addi => a.add(AVal::konst(imm as u32)),
                    OpImmOp::Slli => a.shl((imm as u32) & 0x1f),
                    _ => match a.as_const() {
                        Some(c) => AVal::konst(op.eval(c, imm)),
                        None => AVal::Top,
                    },
                };
                st.set(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let (a, b) = (st.get(rs1), st.get(rs2));
                let v = match op {
                    OpOp::Add => a.add(b),
                    OpOp::Sub => a.sub(b),
                    OpOp::Mul => a.mul(b),
                    OpOp::Sll => match b.as_const() {
                        Some(sh) => a.shl(sh & 0x1f),
                        None => AVal::Top,
                    },
                    _ => match (a.as_const(), b.as_const()) {
                        (Some(x), Some(y)) => AVal::konst(op.eval(x, y)),
                        _ => AVal::Top,
                    },
                };
                st.set(rd, v);
            }
            Instr::Amo { rd, rs1, .. } => {
                let addr = st.get(rs1);
                access(st, &mut collect, AccessKind::Amo, 4, addr);
                st.set(rd, AVal::Top);
            }
            Instr::Fence => st.unfenced.clear(),
            Instr::Ecall | Instr::Ebreak => {}
            // lr/sc trap in the tile; the absint already reports them.
            Instr::LrW { rd, .. } | Instr::ScW { rd, .. } => st.set(rd, AVal::Top),
            Instr::FpCmp { rd, .. }
            | Instr::FcvtWS { rd, .. }
            | Instr::FcvtWuS { rd, .. }
            | Instr::FmvXW { rd, .. } => st.set(rd, AVal::Top),
            Instr::FpOp { .. }
            | Instr::Fma { .. }
            | Instr::FcvtSW { .. }
            | Instr::FcvtSWu { .. }
            | Instr::FmvWX { .. } => {}
        }
    }
}

/// `true` when `addr` is a concrete in-bounds local-SPM address for every
/// rank (rank-independent): the only write target that cannot be in flight
/// at a barrier join.
fn is_local_spm(addr: AVal, width: u32, lc: &LintConfig) -> bool {
    matches!(
        addr,
        AVal::Aff { sym: None, base, coeff: 0 } if base.wrapping_add(width) <= lc.spm_bytes
    )
}

/// Per-successor states of block `b` with rank pins refined along the
/// edges of a `rank ==/!= const` branch.
fn succ_states(instrs: &[Instr], cfg: &Cfg, b: usize, out: &PState) -> Vec<(usize, PState)> {
    let block = &cfg.blocks[b];
    let last = block.end - 1;
    let mut refined: Vec<(usize, PState)> = block.succs.iter().map(|&s| (s, out.clone())).collect();
    if block.term != Terminator::Branch {
        return refined;
    }
    let Instr::Branch {
        op,
        rs1,
        rs2,
        offset,
    } = instrs[last]
    else {
        return refined;
    };
    // rank-vs-constant guard? Solve `base + coeff*rank == k` for rank.
    let solve = |v: AVal, k: AVal| -> Option<u32> {
        let (
            AVal::Aff {
                sym: None,
                base,
                coeff,
            },
            Some(k),
        ) = (v, k.as_const())
        else {
            return None;
        };
        if coeff == 0 {
            return None;
        }
        let diff = k.wrapping_sub(base);
        (diff % coeff == 0).then_some(diff / coeff)
    };
    let (va, vb) = (out.get(rs1), out.get(rs2));
    let Some(rank) = solve(va, vb).or_else(|| solve(vb, va)) else {
        return refined;
    };
    let t = last as i64 + i64::from(offset) / i64::from(INSTR_BYTES);
    let taken = (0..instrs.len() as i64)
        .contains(&t)
        .then(|| cfg.block_of[t as usize]);
    let fall = (last + 1 < instrs.len()).then(|| cfg.block_of[last + 1]);
    if taken == fall {
        return refined;
    }
    for (s, st) in &mut refined {
        let eq_edge = match op {
            hb_isa::BranchOp::Eq => Some(*s) == taken && Some(*s) != fall,
            hb_isa::BranchOp::Ne => Some(*s) == fall && Some(*s) != taken,
            _ => false,
        };
        if eq_edge {
            st.pin = Pin::Eq(rank);
        }
    }
    refined
}

/// Which shared container a concretized address lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Container {
    /// A tile's scratchpad, identified by its full-cell-group rank.
    Spm(u32),
    /// One cell's DRAM window (`OWN_CELL` kept as a sentinel: all tiles of
    /// a group live in one cell, so it compares consistently).
    Dram(u32),
    /// Hash-interleaved global DRAM (compared by pre-hash offset).
    GlobalDram,
    /// The opaque region behind launch argument `k`.
    Arg(u8),
}

impl Container {
    fn space(self) -> &'static str {
        match self {
            Container::Spm(_) => "scratchpad",
            Container::Dram(_) => "cell-DRAM",
            Container::GlobalDram => "global-DRAM",
            Container::Arg(_) => "launch-argument",
        }
    }
}

/// Evaluates `acc` for a tile of rank `r`: the container plus the byte
/// range `[lo, hi)` touched, or `None` when the address faults (the absint
/// reports those separately).
fn concretize(acc: &Acc, r: u32, lc: &LintConfig) -> Option<(Container, u64, u64)> {
    let w = u64::from(acc.width);
    let e = acc.base.wrapping_add(acc.coeff.wrapping_mul(r));
    if let Some(k) = acc.sym {
        return Some((Container::Arg(k), u64::from(e), u64::from(e) + w));
    }
    match e >> 30 {
        0b00 => (u64::from(e) + w <= u64::from(lc.spm_bytes))
            .then(|| (Container::Spm(r), u64::from(e), u64::from(e) + w)),
        0b01 => {
            let y = (e >> 24) & 0x3f;
            let x = (e >> 18) & 0x3f;
            let off = e & 0x3ffff;
            (x < u32::from(lc.cell_w)
                && y < u32::from(lc.cell_h)
                && u64::from(off) + w <= u64::from(lc.spm_bytes))
            .then(|| {
                (
                    Container::Spm(y * u32::from(lc.cell_w) + x),
                    u64::from(off),
                    u64::from(off) + w,
                )
            })
        }
        0b10 => {
            let cell = (e >> 24) & 0x3f;
            let addr = e & 0xff_ffff;
            (u64::from(addr) + w <= u64::from(lc.dram_bytes_per_cell))
                .then(|| (Container::Dram(cell), u64::from(addr), u64::from(addr) + w))
        }
        _ => {
            let total = (u64::from(lc.dram_bytes_per_cell) * u64::from(lc.num_cells)).max(1);
            let off = u64::from(e & 0x3fff_ffff) % total;
            Some((Container::GlobalDram, off, off + w))
        }
    }
}

/// Searches for distinct ranks `r != r'` under which the two accesses
/// touch overlapping bytes of the same container.
fn overlap(a: &Acc, b: &Acc, ranks: u32, lc: &LintConfig) -> Option<&'static str> {
    if a.sym != b.sym {
        // Distinct launch arguments are assumed non-aliasing (and a
        // concrete EVA cannot be related to an opaque argument region).
        return None;
    }
    // Fast path for the common mass of accesses: rank-independent local-SPM
    // addresses live in the accessing tile's own scratchpad, and two
    // distinct ranks name distinct scratchpads.
    if a.sym.is_none()
        && a.coeff == 0
        && b.coeff == 0
        && is_local_spm(
            AVal::Aff {
                sym: None,
                base: a.base,
                coeff: 0,
            },
            a.width,
            lc,
        )
        && is_local_spm(
            AVal::Aff {
                sym: None,
                base: b.base,
                coeff: 0,
            },
            b.width,
            lc,
        )
    {
        return None;
    }
    let range = |pin: Option<u32>| match pin {
        Some(c) => (c, c + 1),
        None => (0, ranks),
    };
    let (alo, ahi) = range(a.pin);
    let (blo, bhi) = range(b.pin);
    for ra in alo..ahi {
        for rb in blo..bhi {
            if ra == rb {
                continue;
            }
            let (Some((ca, la, ha)), Some((cb, lb, hb))) =
                (concretize(a, ra, lc), concretize(b, rb, lc))
            else {
                continue;
            };
            if ca == cb && la < hb && lb < ha {
                return Some(ca.space());
            }
        }
    }
    None
}

/// Can the two accesses execute in the same barrier phase? Returns the
/// meeting phase.
fn meet_phase(a: &Acc, b: &Acc) -> Option<u32> {
    for &x in &a.phases {
        for &y in &b.phases {
            if x == y {
                return Some(x);
            }
            // The earlier-phase access catches up if a loop re-executes it
            // with `bc` joins per iteration and the gap is a multiple.
            let (lo, hi, lo_periods) = if x < y {
                (x, y, &a.periods)
            } else {
                (y, x, &b.periods)
            };
            let d = hi - lo;
            if lo_periods.iter().any(|&bc| bc > 0 && d % bc == 0) {
                return Some(hi);
            }
        }
    }
    None
}

/// Runs the full analysis over an assembled program.
pub fn phase_conflicts(program: &Program, lc: &LintConfig) -> Vec<PhaseConflict> {
    let cfg = Cfg::build(program);
    conflicts(&cfg, program.instrs(), lc)
}

/// Lint entry point: emits one `phase-race` warning per conflicting pair.
pub fn check_phase_conflicts(
    cfg: &Cfg,
    instrs: &[Instr],
    lc: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    for c in conflicts(cfg, instrs, lc) {
        diags.push(Diagnostic {
            severity: Severity::Warning,
            pc: Some(c.pc_a),
            rule: Rule::PhaseRace,
            message: format!(
                "{} at {:#x} and {} at {:#x} can touch the same {} word from \
                 different tiles in barrier phase {}; order them with fence+barrier \
                 or make both atomic",
                c.kind_a.label(),
                c.pc_a,
                c.kind_b.label(),
                c.pc_b,
                c.space,
                c.phase
            ),
        });
    }
}

fn conflicts(cfg: &Cfg, instrs: &[Instr], lc: &LintConfig) -> Vec<PhaseConflict> {
    let n = cfg.blocks.len();
    if n == 0 {
        return Vec::new();
    }
    let rpo = cfg.reverse_postorder();

    // Fixpoint over block entry states.
    let mut inb: Vec<Option<PState>> = vec![None; n];
    inb[0] = Some(PState::entry(lc));
    for _ in 0..64 {
        let mut changed = false;
        for &b in &rpo {
            let Some(mut st) = inb[b].clone() else {
                continue;
            };
            exec_block(instrs, cfg, b, &mut st, lc, None);
            for (s, refined) in succ_states(instrs, cfg, b, &st) {
                let joined = match &inb[s] {
                    None => refined,
                    Some(old) => old.join(&refined),
                };
                if inb[s].as_ref() != Some(&joined) {
                    inb[s] = Some(joined);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting walk: collect accesses, barrier joins and unfenced leaks.
    let mut col = Collect::default();
    for (b, entry) in inb.iter().enumerate().take(n) {
        let Some(mut st) = entry.clone() else {
            continue;
        };
        exec_block(instrs, cfg, b, &mut st, lc, Some(&mut col));
    }

    // Skeleton phase per block: propagate barrier counts over non-back
    // edges (the same numbering as the barrier-mismatch check; blocks with
    // disagreeing predecessors get no phase and their accesses are
    // skipped — the mismatch itself is reported by the absint).
    let mut barrier_at = vec![false; instrs.len()];
    for &i in &col.barriers {
        barrier_at[i] = true;
    }
    let count: Vec<u32> = cfg
        .blocks
        .iter()
        .map(|blk| (blk.start..blk.end).filter(|&i| barrier_at[i]).count() as u32)
        .collect();
    let back: HashSet<(usize, usize)> = cfg.back_edges().into_iter().collect();
    let preds = cfg.preds();
    let reachable = cfg.reachable();
    let mut phase: Vec<Option<u32>> = vec![None; n];
    phase[0] = Some(0);
    for &b in &rpo {
        if b == 0 {
            continue;
        }
        let mut agreed = None;
        let mut consistent = true;
        for &p in &preds[b] {
            if back.contains(&(p, b)) || !reachable[p] {
                continue;
            }
            let Some(pp) = phase[p] else {
                consistent = false;
                continue;
            };
            let v = pp + count[p];
            match agreed {
                None => agreed = Some(v),
                Some(a) if a != v => consistent = false,
                _ => {}
            }
        }
        if consistent {
            phase[b] = agreed;
        }
    }
    let phase_of = |i: usize| -> Option<u32> {
        let b = cfg.block_of[i];
        let blk = &cfg.blocks[b];
        let before = (blk.start..i).filter(|&j| barrier_at[j]).count() as u32;
        phase[b].map(|p| p + before)
    };

    // Natural loops and their barrier joins per iteration.
    let mut loops: Vec<(HashSet<usize>, u32)> = Vec::new();
    for (tail, head) in cfg.back_edges() {
        let body: HashSet<usize> = cfg.natural_loop(tail, head).into_iter().collect();
        let joins: u32 = body.iter().map(|&blk| count[blk]).sum();
        loops.push((body, joins));
    }

    // Assemble the access list with phase sets and loop periods.
    let mut accs: Vec<Acc> = Vec::new();
    for &(idx, kind, width, addr, pin) in &col.accs {
        let AVal::Aff { sym, base, coeff } = addr else {
            continue;
        };
        let Some(p) = phase_of(idx) else {
            continue;
        };
        let mut phases = BTreeSet::new();
        phases.insert(p);
        let periods: Vec<u32> = loops
            .iter()
            .filter(|(body, _)| body.contains(&cfg.block_of[idx]))
            .map(|&(_, joins)| joins)
            .collect();
        accs.push(Acc {
            idx,
            kind,
            width,
            sym,
            base,
            coeff,
            pin,
            phases,
            periods,
        });
    }
    // Unfenced writes leak one phase past the join they were in flight at.
    for (join, stores) in &col.leaks {
        let Some(pj) = phase_of(*join) else {
            continue;
        };
        for acc in &mut accs {
            if stores.contains(&acc.idx) {
                acc.phases.insert(pj + 1);
            }
        }
    }
    accs.sort_by_key(|a| a.idx);

    let ranks = u32::from(lc.cell_w) * u32::from(lc.cell_h);
    let ranks = ranks.clamp(2, 128);
    let mut out = Vec::new();
    for i in 0..accs.len() {
        for j in i..accs.len() {
            let (a, b) = (&accs[i], &accs[j]);
            if !a.kind.is_write() && !b.kind.is_write() {
                continue;
            }
            if a.kind == AccessKind::Amo && b.kind == AccessKind::Amo {
                continue;
            }
            let Some(phase) = meet_phase(a, b) else {
                continue;
            };
            let Some(space) = overlap(a, b, ranks, lc) else {
                continue;
            };
            out.push(PhaseConflict {
                pc_a: cfg.pc_of(a.idx),
                kind_a: a.kind,
                pc_b: cfg.pc_of(b.idx),
                kind_b: b.kind,
                phase,
                space,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_asm::Assembler;
    use hb_core::{pgas, HbOps};
    use hb_isa::Gpr::*;

    fn analyze(a: &Assembler) -> Vec<PhaseConflict> {
        let p = a.assemble(0).unwrap();
        phase_conflicts(&p, &LintConfig::default())
    }

    /// out[rank] = rank; barrier; read out[rank + 1].
    fn producer_consumer(fenced: bool) -> Assembler {
        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        a.slli(T1, T0, 2);
        a.add(T2, A0, T1);
        a.sw(T0, T2, 0);
        if fenced {
            a.fence();
        }
        a.barrier(T6);
        a.lw(T3, T2, 4);
        a.ecall();
        a
    }

    #[test]
    fn unfenced_producer_consumer_is_flagged() {
        let c = analyze(&producer_consumer(false));
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].kind_a, AccessKind::Write);
        assert_eq!(c[0].kind_b, AccessKind::Read);
        assert_eq!(c[0].phase, 1);
        assert_eq!(c[0].space, "launch-argument");
    }

    #[test]
    fn fenced_producer_consumer_is_clean() {
        assert_eq!(analyze(&producer_consumer(true)), vec![]);
    }

    #[test]
    fn same_word_write_write_conflicts_with_itself() {
        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        a.sw(T0, A0, 0); // every rank stores to the same word
        a.fence();
        a.ecall();
        let c = analyze(&a);
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].pc_a, c[0].pc_b);
    }

    #[test]
    fn rank_guard_pins_the_writer() {
        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        let skip = a.new_label();
        a.bnez(T0, skip); // only rank 0 falls through
        a.sw(T0, A0, 0);
        a.bind(skip);
        a.fence();
        a.ecall();
        assert_eq!(analyze(&a), vec![]);
    }

    #[test]
    fn amo_amo_is_exempt_but_amo_vs_store_is_not() {
        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        a.amoadd(T1, T0, A0); // every rank: amo on arg0[0]
        a.fence();
        a.ecall();
        assert_eq!(analyze(&a), vec![]);

        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        a.amoadd(T1, T0, A0);
        a.slli(T2, T0, 2);
        a.add(T2, A0, T2);
        a.sw(T0, T2, 0); // rank 0's store hits the amo word
        a.fence();
        a.ecall();
        let c = analyze(&a);
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].kind_a, AccessKind::Amo);
        assert_eq!(c[0].kind_b, AccessKind::Write);
    }

    #[test]
    fn loop_phase_congruence_catches_missing_barrier() {
        // Double buffer with ONE barrier per iteration: write A / read A
        // land in the same phase mod 1.
        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        a.slli(T1, T0, 2);
        a.add(T2, A0, T1); // &A[rank]
        a.add(T3, A1, T1); // &B[rank]
        a.li(T4, 3);
        let top = a.here();
        a.sw(T0, T2, 0);
        a.lw(T5, T3, 4);
        a.sw(T0, T3, 0);
        a.lw(T5, T2, 4);
        a.fence();
        a.barrier(T6);
        a.addi(T4, T4, -1);
        a.bnez(T4, top);
        a.ecall();
        let c = analyze(&a);
        assert_eq!(c.len(), 2, "{c:?}");
    }

    #[test]
    fn two_barrier_double_buffer_is_clean() {
        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        a.slli(T1, T0, 2);
        a.add(T2, A0, T1);
        a.add(T3, A1, T1);
        a.li(T4, 3);
        let top = a.here();
        a.sw(T0, T2, 0);
        a.lw(T5, T3, 4);
        a.fence();
        a.barrier(T6);
        a.sw(T0, T3, 0);
        a.lw(T5, T2, 4);
        a.fence();
        a.barrier(T6);
        a.addi(T4, T4, -1);
        a.bnez(T4, top);
        a.ecall();
        assert_eq!(analyze(&a), vec![]);
    }

    #[test]
    fn distinct_arguments_do_not_alias() {
        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        a.slli(T1, T0, 2);
        a.add(T2, A0, T1);
        a.sw(T0, T2, 0); // write arg0[rank]
        a.add(T3, A1, T1);
        a.lw(T4, T3, 4); // read arg1[rank + 1]: a different region
        a.fence();
        a.ecall();
        assert_eq!(analyze(&a), vec![]);
    }

    #[test]
    fn concrete_dram_eva_conflict_is_found() {
        let mut a = Assembler::new();
        a.tg_rank(T0, T6);
        a.li(T1, pgas::local_dram(256) as i32);
        a.sw(T0, T1, 0);
        a.fence();
        a.ecall();
        let c = analyze(&a);
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c[0].space, "cell-DRAM");
    }
}
