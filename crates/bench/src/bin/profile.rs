//! Deterministic guest-code profile of one suite kernel: runs it with
//! `MachineConfig::profile` enabled, maps the retired-PC and stall-cycle
//! histograms onto the kernel's basic blocks, prints the ranked
//! hot-block table and writes two exports next to `--out`:
//!
//! - `<out>.folded` — folded-stack text for `flamegraph.pl`/Speedscope,
//! - `<out>.ndjson` — machine-readable summary (one block per line).
//!
//! ```text
//! cargo run --release -p hb-bench --bin profile -- \
//!     [--kernel SGEMM] [--out profile] [--top 10]
//! ```
//!
//! Kernel names match the suite (case insensitive); `HB_SCALE` picks the
//! Cell shape as in the figure binaries. Profiling is observation-only:
//! cycles and results are bit-identical to an unprofiled run, and the
//! profile itself is bit-identical across `HB_THREADS` and
//! `HB_EVENT_CORE` — CI diffs the `.folded` bytes across all four legs.

use hb_bench::{bench_size, hb_config};
use hb_core::MachineConfig;

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    let eq = format!("{flag}=");
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        } else if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_owned());
        }
    }
    None
}

const USAGE: &str = "usage: profile [--kernel SGEMM] [--out profile] [--top 10]";

fn main() {
    let kernel = arg_value("--kernel").unwrap_or_else(|| "SGEMM".to_owned());
    let out = arg_value("--out").unwrap_or_else(|| "profile".to_owned());
    let top: usize = arg_value("--top").map_or(10, |v| {
        v.parse()
            .unwrap_or_else(|_| hb_bench::cli::usage_fail(USAGE, format!("bad --top {v:?}")))
    });

    let suite = hb_kernels::suite();
    let bench = suite
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(&kernel))
        .unwrap_or_else(|| {
            let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
            hb_bench::cli::usage_fail(
                USAGE,
                format!("unknown kernel {kernel:?}; available: {}", names.join(", ")),
            )
        });

    let cfg = MachineConfig {
        profile: true,
        ..hb_config()
    };
    println!(
        "profile run: {} on a {}x{} Cell",
        bench.name(),
        cfg.cell_dim.x,
        cfg.cell_dim.y
    );

    let (scope, store) = hb_prof::attach();
    let stats = match bench.run(&cfg, bench_size()) {
        Ok(stats) => stats,
        Err(e) => hb_bench::cli::fail(e),
    };
    drop(scope);

    let store = store.lock().unwrap();
    let Some(run) = store.last() else {
        hb_bench::cli::fail("kernel run captured no profile");
    };
    let analysis = hb_prof::Analysis::analyze(bench.name(), run);

    print!("{}", hb_prof::summary::report_text(&analysis, top));
    println!(
        "kernel cycles {}  (profile covers {} tile-cycles)",
        stats.cycles,
        analysis.tile_cycles()
    );

    let folded = format!("{out}.folded");
    let ndjson = format!("{out}.ndjson");
    if let Err(e) = std::fs::write(&folded, hb_prof::folded::to_string(&analysis)) {
        hb_bench::cli::fail(format!("write {folded}: {e}"));
    }
    if let Err(e) = std::fs::write(&ndjson, hb_prof::summary::to_ndjson(&analysis)) {
        hb_bench::cli::fail(format!("write {ndjson}: {e}"));
    }
    println!("wrote {folded} and {ndjson}");
}
