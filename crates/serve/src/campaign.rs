//! Campaigns: named manifests of thousands of [`JobSpec`]s, executed in two
//! phases (golden references first, then everything else) against a
//! [`Store`]. A campaign directory is self-describing and durable:
//!
//! ```text
//! <dir>/
//!   manifest.txt     header + one job line per spec
//!   store/           content-addressed results (see crate::store)
//!   report.txt       deterministic aggregate (written by `report`)
//! ```
//!
//! Because job results are keyed by content hash, *resume is a no-op
//! re-run*: a killed campaign re-executes only the jobs whose results are
//! missing, and an identical re-submission is 100% cache hits.

use crate::pool::{run_jobs, CampaignSummary, CancelToken, Executor, RunOpts};
use crate::spec::{JobKind, JobSpec, PlanSpec};
use crate::store::Store;
use hb_core::MachineConfig;
use std::path::Path;

/// A named set of jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (reports and directory labeling only; not hashed).
    pub name: String,
    /// The jobs, in submission order (reports iterate this order).
    pub specs: Vec<JobSpec>,
}

impl Campaign {
    /// A single-fault AVF campaign: one golden job plus `runs` seeded
    /// single-fault jobs (`seed + i` for run `i`), mirroring the
    /// `fault_campaign` harness.
    pub fn fault(
        name: impl Into<String>,
        kernel: &str,
        config: &MachineConfig,
        seed: u64,
        runs: usize,
    ) -> Campaign {
        let mut specs = vec![crate::exec::golden_spec(kernel, config)];
        specs.extend((0..runs).map(|i| JobSpec {
            kind: JobKind::Fault,
            kernel: kernel.to_owned(),
            seed: seed.wrapping_add(i as u64),
            plan: PlanSpec::Seeded { faults: 1 },
            config: config.clone(),
            label: format!("run {i}"),
        }));
        Campaign {
            name: name.into(),
            specs,
        }
    }

    /// A hot-block profiling campaign: one `profile:<size>` job per suite
    /// kernel named in `kernels`, in the given order. Kept separate from
    /// [`Campaign::fault`] so fault-campaign job counts (which CI asserts
    /// on) never change shape; mix specs by concatenating `specs` vectors.
    pub fn profile(
        name: impl Into<String>,
        kernels: &[&str],
        config: &MachineConfig,
        size: &str,
    ) -> Campaign {
        let specs = kernels
            .iter()
            .map(|kernel| JobSpec {
                kind: JobKind::Profile {
                    size: size.to_owned(),
                },
                kernel: (*kernel).to_owned(),
                seed: 0,
                plan: PlanSpec::None,
                config: config.clone(),
                label: format!("profile {kernel}"),
            })
            .collect();
        Campaign {
            name: name.into(),
            specs,
        }
    }

    /// Job hashes in manifest order.
    pub fn hashes(&self) -> Vec<String> {
        self.specs.iter().map(JobSpec::hash).collect()
    }

    /// Serializes the manifest.
    pub fn manifest_text(&self) -> String {
        let mut out = format!("hbserve-manifest v1 name={}\n", self.name);
        for spec in &self.specs {
            out.push_str(&spec.manifest_line());
            out.push('\n');
        }
        out
    }

    /// Parses [`Campaign::manifest_text`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn from_manifest_text(text: &str) -> Result<Campaign, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty manifest")?;
        let name = header
            .strip_prefix("hbserve-manifest v1 name=")
            .ok_or_else(|| format!("bad manifest header {header:?}"))?
            .to_owned();
        let mut specs = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            specs.push(
                JobSpec::from_manifest_line(line)
                    .map_err(|e| format!("manifest line {}: {e}", i + 2))?,
            );
        }
        Ok(Campaign { name, specs })
    }

    /// Writes `manifest.txt` into `dir` (creating it).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("manifest.txt"), self.manifest_text())
    }

    /// Loads a campaign from `dir/manifest.txt`.
    ///
    /// # Errors
    ///
    /// Returns a message on a missing or malformed manifest.
    pub fn load(dir: &Path) -> Result<Campaign, String> {
        let path = dir.join("manifest.txt");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Campaign::from_manifest_text(&text)
    }

    /// Opens (creating) the store of a campaign directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn open_store(dir: &Path) -> std::io::Result<Store> {
        Store::open(dir.join("store"))
    }

    /// Executes the campaign: golden jobs first (fault jobs classify
    /// against their stored records), then the rest. Already-stored results
    /// are cache hits. `opts.max_jobs` bounds *executions* across both
    /// phases.
    pub fn run(
        &self,
        store: &Store,
        exec: &dyn Executor,
        opts: &RunOpts,
        cancel: &CancelToken,
    ) -> CampaignSummary {
        let started = std::time::Instant::now();
        let (gold, rest): (Vec<JobSpec>, Vec<JobSpec>) = self
            .specs
            .iter()
            .cloned()
            .partition(|s| s.kind == JobKind::Golden);
        let first = run_jobs(&gold, store, exec, opts, cancel);
        let mut opts2 = opts.clone();
        if let Some(max) = opts.max_jobs {
            opts2.max_jobs = Some(max.saturating_sub(first.run));
        }
        let second = run_jobs(&rest, store, exec, &opts2, cancel);
        CampaignSummary {
            total: self.specs.len(),
            run: first.run + second.run,
            cached: first.cached + second.cached,
            retried: first.retried + second.retried,
            failed: first.failed + second.failed,
            skipped: first.skipped + second.skipped,
            wall_ms: started.elapsed().as_millis() as u64,
        }
    }

    /// Completion status against a store.
    pub fn status(&self, store: &Store) -> CampaignStatus {
        let mut status = CampaignStatus::default();
        let failed_hashes: std::collections::HashSet<String> = store
            .journal()
            .unwrap_or_default()
            .into_iter()
            .filter(|e| e.status == "failed")
            .map(|e| e.hash)
            .collect();
        for hash in self.hashes() {
            if store.has(&hash) {
                status.done += 1;
            } else {
                status.missing += 1;
                if failed_hashes.contains(&hash) {
                    status.failed_previously += 1;
                }
            }
        }
        status
    }
}

/// How much of a campaign's manifest has stored results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignStatus {
    /// Jobs with a stored result.
    pub done: usize,
    /// Jobs without one.
    pub missing: usize,
    /// Missing jobs whose last journal entry is a terminal failure.
    pub failed_previously: usize,
}

impl CampaignStatus {
    /// Stable one-line rendering.
    pub fn line(&self) -> String {
        format!(
            "status: done={} missing={} failed_previously={}",
            self.done, self.missing, self.failed_previously
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_campaign_shape_and_manifest_roundtrip() {
        // Pin the host-only fields to the values `from_canonical_text`
        // restores, so the roundtrip compares equal under any
        // HB_THREADS/HB_EVENT_CORE environment.
        let cfg = MachineConfig {
            threads: 1,
            event_core: true,
            ..MachineConfig::baseline_16x8()
        };
        let c = Campaign::fault("avf sgemm", "sgemm", &cfg, 7, 5);
        assert_eq!(c.specs.len(), 6);
        assert_eq!(c.specs[0].kind, JobKind::Golden);
        assert!(c.specs[1..].iter().all(|s| s.kind == JobKind::Fault));
        assert_eq!(c.specs[1].seed, 7);
        assert_eq!(c.specs[5].seed, 11);

        let text = c.manifest_text();
        let back = Campaign::from_manifest_text(&text).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.hashes(), c.hashes());

        assert!(Campaign::from_manifest_text("nonsense\n").is_err());
    }

    #[test]
    fn profile_campaign_shape_and_manifest_roundtrip() {
        let cfg = MachineConfig {
            threads: 1,
            event_core: true,
            ..MachineConfig::baseline_16x8()
        };
        let c = Campaign::profile("hot blocks", &["SGEMM", "BFS", "Jacobi"], &cfg, "small");
        assert_eq!(c.specs.len(), 3);
        for (spec, kernel) in c.specs.iter().zip(["SGEMM", "BFS", "Jacobi"]) {
            assert_eq!(
                spec.kind,
                JobKind::Profile {
                    size: "small".to_owned()
                }
            );
            assert_eq!(spec.kernel, kernel);
            assert_eq!(spec.plan, PlanSpec::None);
            assert_eq!(spec.label, format!("profile {kernel}"));
        }

        let back = Campaign::from_manifest_text(&c.manifest_text()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.hashes(), c.hashes());
    }
}
