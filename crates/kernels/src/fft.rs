//! FFT — batched radix-2 complex FFT (spectral-methods dwarf).
//!
//! Compute-intensive with sequential access: each tile claims rank-strided
//! signals, streams the whole signal plus twiddle and bit-reversal tables
//! into Local SPM with large sequential loads (Load Packet Compression
//! territory), runs the in-SPM butterfly passes, and streams the spectrum
//! back out through the write-validate cache.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, Machine, MachineConfig, SimError};
use hb_isa::{Fpr::*, Gpr::*};
use hb_workloads::{gen, golden};
use std::sync::Arc;

/// SPM layout for up to 128-point signals: data (interleaved complex) at
/// 0 (1 KB), bit-reversal table at 0x400 (512 B), twiddles (wr, wi
/// interleaved) at 0x600 (512 B).
const SPM_DATA: i32 = 0;
const SPM_REV: i32 = 0x400;
const SPM_TW: i32 = 0x600;

/// The batched-FFT benchmark: `batch` independent `points`-point FFTs.
#[derive(Debug, Clone)]
pub struct Fft {
    /// Transform size (power of two, <= 128).
    pub points: u32,
    /// Number of independent signals.
    pub batch: u32,
}

impl Default for Fft {
    fn default() -> Fft {
        Fft {
            points: 64,
            batch: 32,
        }
    }
}

impl Fft {
    fn sized(&self, size: SizeClass) -> Fft {
        match size {
            SizeClass::Tiny => Fft {
                points: 16,
                batch: 8,
            },
            SizeClass::Small => self.clone(),
            SizeClass::Large => Fft {
                points: 128,
                batch: 128,
            },
        }
    }

    /// Builds the kernel. Arguments: `a0`=signals (batch * 2N floats),
    /// `a1`=bit-reversal table (N words), `a2`=twiddles (N/2 interleaved
    /// (wr, wi) pairs), `a3`=batch, `a4`=N.
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);

        // ---- Copy the reversal table (N words) and twiddles (N floats)
        // into SPM once per tile ----
        a.mv(T0, A1);
        a.li(T1, SPM_REV);
        a.mv(T2, A4);
        let copy_rev = a.here();
        a.lw(T3, T0, 0);
        a.sw(T3, T1, 0);
        a.addi(T0, T0, 4);
        a.addi(T1, T1, 4);
        a.addi(T2, T2, -1);
        a.bnez(T2, copy_rev);
        a.mv(T0, A2);
        a.li(T1, SPM_TW);
        a.mv(T2, A4); // N floats = N/2 pairs * 2
        let copy_tw = a.here();
        a.lw(T3, T0, 0);
        a.sw(T3, T1, 0);
        a.addi(T0, T0, 4);
        a.addi(T1, T1, 4);
        a.addi(T2, T2, -1);
        a.bnez(T2, copy_tw);

        // ---- Signal loop ----
        a.mv(S0, S10); // s = rank
        let sig_loop = a.new_label();
        let done = a.new_label();
        a.bind(sig_loop);
        a.bge(S0, A3, done);

        // S1 = &signal[s] in DRAM (s * 2N * 4 bytes).
        a.slli(T0, A4, 3);
        a.mul(S1, S0, T0);
        a.add(S1, S1, A0);

        // Copy signal into SPM (2N words, 4-wide for LPC).
        a.mv(T0, S1);
        a.li(T1, SPM_DATA);
        a.slli(T2, A4, 1); // 2N words
        a.srli(T2, T2, 2); // /4 iterations (N multiple of 8 -> exact)
        let copy_sig = a.here();
        a.lw(T3, T0, 0);
        a.lw(T4, T0, 4);
        a.lw(T5, T0, 8);
        a.lw(S2, T0, 12);
        a.sw(T3, T1, 0);
        a.sw(T4, T1, 4);
        a.sw(T5, T1, 8);
        a.sw(S2, T1, 12);
        a.addi(T0, T0, 16);
        a.addi(T1, T1, 16);
        a.addi(T2, T2, -1);
        a.bnez(T2, copy_sig);

        // Bit-reversal permutation (swap pairs where rev[i] > i).
        a.li(S2, 0); // i
        let rev_loop = a.here();
        {
            a.slli(T0, S2, 2);
            a.lw(T1, T0, SPM_REV); // j = rev[i]
            let no_swap = a.new_label();
            a.ble(T1, S2, no_swap);
            // Swap complex i and j in SPM.
            a.slli(T2, S2, 3);
            a.slli(T3, T1, 3);
            a.flw(Ft0, T2, SPM_DATA);
            a.flw(Ft1, T2, SPM_DATA + 4);
            a.flw(Ft2, T3, SPM_DATA);
            a.flw(Ft3, T3, SPM_DATA + 4);
            a.fsw(Ft2, T2, SPM_DATA);
            a.fsw(Ft3, T2, SPM_DATA + 4);
            a.fsw(Ft0, T3, SPM_DATA);
            a.fsw(Ft1, T3, SPM_DATA + 4);
            a.bind(no_swap);
            a.addi(S2, S2, 1);
        }
        a.blt(S2, A4, rev_loop);

        // Butterfly stages: len = 2, 4, ..., N.
        a.li(S2, 2); // len
        let stage_loop = a.here();
        {
            a.srli(S3, S2, 1); // half = len/2
            a.divu(S4, A4, S2); // tstep = N / len
            a.li(S5, 0); // start
            let group_loop = a.here();
            {
                a.li(S6, 0); // k
                let bf_loop = a.here();
                {
                    // Twiddle: index k * tstep, pairs of 8 bytes.
                    a.mul(T0, S6, S4);
                    a.slli(T0, T0, 3);
                    a.flw(Fs0, T0, SPM_TW); // wr
                    a.flw(Fs1, T0, SPM_TW + 4); // wi
                                                // i = start + k, j = i + half (complex indices).
                    a.add(T1, S5, S6);
                    a.slli(T1, T1, 3);
                    a.slli(T3, S3, 3);
                    a.add(T2, T1, T3); // j byte offset
                    a.flw(Fa0, T2, SPM_DATA); // xr
                    a.flw(Fa1, T2, SPM_DATA + 4); // xi
                                                  // (tr, ti) = x * w
                    a.fmul(Fa2, Fa0, Fs0);
                    a.fnmsub(Fa2, Fa1, Fs1, Fa2); // tr = xr*wr - xi*wi
                    a.fmul(Fa3, Fa0, Fs1);
                    a.fmadd(Fa3, Fa1, Fs0, Fa3); // ti = xr*wi + xi*wr
                    a.flw(Fa4, T1, SPM_DATA); // ur
                    a.flw(Fa5, T1, SPM_DATA + 4); // ui
                    a.fadd(Fa6, Fa4, Fa2);
                    a.fsw(Fa6, T1, SPM_DATA);
                    a.fadd(Fa7, Fa5, Fa3);
                    a.fsw(Fa7, T1, SPM_DATA + 4);
                    a.fsub(Fa6, Fa4, Fa2);
                    a.fsw(Fa6, T2, SPM_DATA);
                    a.fsub(Fa7, Fa5, Fa3);
                    a.fsw(Fa7, T2, SPM_DATA + 4);
                    a.addi(S6, S6, 1);
                }
                a.blt(S6, S3, bf_loop);
                a.add(S5, S5, S2);
            }
            a.blt(S5, A4, group_loop);
            a.slli(S2, S2, 1);
        }
        a.ble(S2, A4, stage_loop);

        // Copy the spectrum back to DRAM.
        a.li(T0, SPM_DATA);
        a.mv(T1, S1);
        a.slli(T2, A4, 1);
        a.srli(T2, T2, 2);
        let copy_out = a.here();
        a.lw(T3, T0, 0);
        a.lw(T4, T0, 4);
        a.lw(T5, T0, 8);
        a.lw(S2, T0, 12);
        a.sw(T3, T1, 0);
        a.sw(T4, T1, 4);
        a.sw(T5, T1, 8);
        a.sw(S2, T1, 12);
        a.addi(T0, T0, 16);
        a.addi(T1, T1, 16);
        a.addi(T2, T2, -1);
        a.bnez(T2, copy_out);

        a.add(S0, S0, S11);
        a.j(sig_loop);
        a.bind(done);
        a.fence();
        a.ecall();
        a.assemble(0).expect("fft assembles")
    }

    /// Runs and validates against [`golden::fft`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        let n = self.points as usize;
        assert!(n.is_power_of_two() && (8..=128).contains(&n));
        let mut signals = gen::complex_signal(n * self.batch as usize, 0xFF7);
        let input = signals.clone();
        for s in 0..self.batch as usize {
            golden::fft(&mut signals[s * 2 * n..(s + 1) * 2 * n]);
        }
        let expect = signals;

        // Host-precomputed tables (the RV32 core has no sin/cos).
        let bits = n.trailing_zeros();
        let rev: Vec<u32> = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        let mut twiddles = Vec::with_capacity(n);
        for k in 0..n / 2 {
            let ang = -2.0 * std::f32::consts::PI * k as f32 / n as f32;
            twiddles.push(ang.cos());
            twiddles.push(ang.sin());
        }

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let sig = cell.alloc((input.len() * 4) as u32, 64);
        let rev_dev = cell.alloc((n * 4) as u32, 64);
        let tw_dev = cell.alloc((n * 4) as u32, 64);
        cell.dram_mut().write_f32_slice(sig, &input);
        cell.dram_mut().write_u32_slice(rev_dev, &rev);
        cell.dram_mut().write_f32_slice(tw_dev, &twiddles);

        let program = Arc::new(Self::program());
        machine.launch(
            0,
            &program,
            &[
                pgas::local_dram(sig),
                pgas::local_dram(rev_dev),
                pgas::local_dram(tw_dev),
                self.batch,
                self.points,
            ],
        );
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let got = machine.cell(0).dram().read_f32_slice(sig, expect.len());
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-3 + e.abs() * 1e-3,
                "FFT mismatch at float {i}: sim {g} vs golden {e}"
            );
        }
        Ok(BenchStats::collect("FFT", summary.cycles, &machine))
    }
}

impl Benchmark for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn dwarf(&self) -> &'static str {
        "Spectral Methods"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    #[test]
    fn fft_validates_against_golden() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = Fft::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(
            stats.core.lpc_merged > 0,
            "FFT block copies should trigger LPC"
        );
    }
}
