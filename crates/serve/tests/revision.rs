//! The revision fold: results recorded by one binary/schema revision must
//! never be served to another. This lives in its own integration binary
//! because it mutates the process-global `HB_SERVE_REV` variable, and test
//! binaries run sequentially while tests *within* a binary do not.

use hb_core::MachineConfig;
use hb_serve::{
    binary_rev, Campaign, CancelToken, Executor, JobError, JobRecord, JobSpec, RunOpts, Store,
};
use std::sync::atomic::{AtomicUsize, Ordering};

struct NoopExec(AtomicUsize);

impl Executor for NoopExec {
    fn run(&self, spec: &JobSpec, _store: &Store) -> Result<JobRecord, JobError> {
        self.0.fetch_add(1, Ordering::Relaxed);
        Ok(JobRecord {
            kind: spec.kind.canonical(),
            kernel: spec.kernel.clone(),
            seed: spec.seed,
            outcome: "ok".to_owned(),
            ..JobRecord::default()
        })
    }
}

#[test]
fn a_new_binary_revision_invalidates_the_cache() {
    let dir = std::env::temp_dir().join(format!("hb-serve-rev-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).unwrap();
    let cfg = MachineConfig {
        threads: 1,
        ..MachineConfig::baseline_16x8()
    };
    let campaign = Campaign::fault("rev", "sgemm", &cfg, 1, 4);
    let opts = RunOpts::default();

    std::env::set_var("HB_SERVE_REV", "rev-one");
    assert_eq!(binary_rev(), "rev-one");
    let hashes_one = campaign.hashes();
    let exec = NoopExec(AtomicUsize::new(0));
    let s = campaign.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (5, 0));
    let s = campaign.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (0, 5), "same revision: all hits");

    // A different binary revision re-keys every job: nothing aliases.
    std::env::set_var("HB_SERVE_REV", "rev-two");
    assert_ne!(campaign.hashes(), hashes_one);
    let s = campaign.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (5, 0), "new revision: all misses");
    assert_eq!(exec.0.load(Ordering::Relaxed), 10);

    // Back on the first revision the original results still serve.
    std::env::set_var("HB_SERVE_REV", "rev-one");
    assert_eq!(campaign.hashes(), hashes_one);
    let s = campaign.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (0, 5));

    std::env::remove_var("HB_SERVE_REV");
    let _ = std::fs::remove_dir_all(&dir);
}
