//! Static kernel verifier for HammerBlade RV32IMAF programs.
//!
//! All evaluation kernels are hand-written through the `hb-asm` builder, so
//! a mis-paired barrier, a use-before-def register or a scoreboard overrun
//! otherwise only surfaces as a hung or silently-wrong cycle-level
//! simulation. This crate analyses an assembled [`hb_asm::Program`] *before*
//! simulation:
//!
//! 1. a basic-block CFG ([`mod@cfg`]) with reachability and falls-off-end
//!    detection;
//! 2. classic dataflow ([`dataflow`]): use-before-def over GPRs and FPRs,
//!    dead-write detection via backward liveness, unreachable blocks;
//! 3. abstract interpretation of tile resources ([`absint`]): constant
//!    propagation drives an address classifier mirroring the PGAS map, which
//!    feeds scoreboard-occupancy intervals, barrier-pairing phase checks,
//!    alignment/bounds checks and icache footprint estimates.
//!
//! Run [`lint`] for the full battery, or assemble with
//! [`AssembleChecked::assemble_checked`] to reject programs with
//! `Error`-severity findings outright. The `lint-kernels` binary applies the
//! battery to every kernel in `hb-kernels`.
//!
//! # Examples
//!
//! ```
//! use hb_asm::Assembler;
//! use hb_isa::Gpr::*;
//! use hb_lint::{lint, LintConfig, Severity};
//!
//! let mut a = Assembler::new();
//! a.add(A0, T3, T4); // t3/t4 were never written
//! a.ecall();
//! let program = a.assemble(0).unwrap();
//! let diags = lint(&program, &LintConfig::default());
//! assert!(diags.iter().any(|d| d.severity == Severity::Error));
//! ```

pub mod absint;
pub mod cfg;
pub mod dataflow;
pub mod phases;

use hb_asm::{AsmError, Assembler, Program};
use hb_core::MachineConfig;
use std::collections::BTreeSet;
use std::fmt;

/// How serious a finding is.
///
/// `Error` findings describe programs that trap, deadlock or read garbage
/// when simulated; `assemble_checked` and CI reject them. `Warning` findings
/// are very likely bugs but may be path-insensitive over-approximations.
/// `Info` findings are performance observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Performance observation or analysis limitation note.
    Info,
    /// Probable bug; may be a false positive on unusual control flow.
    Warning,
    /// Definite defect: the program traps, deadlocks or reads undefined
    /// values on some statically-found path.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The rule a [`Diagnostic`] was produced by.
///
/// Rule names (see [`Rule::name`]) are stable identifiers usable with
/// [`LintConfig::disable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A register is read before any instruction wrote it.
    UseBeforeDef,
    /// A written value is never read again.
    DeadWrite,
    /// A block no path from the entry reaches.
    UnreachableBlock,
    /// Execution can run past the last instruction, or a branch/jump
    /// targets an address outside the program image.
    FallsOffEnd,
    /// An indirect jump the analyses cannot follow.
    IndirectJump,
    /// Outstanding remote operations can exceed the scoreboard, stalling
    /// the core for credits.
    ScoreboardPressure,
    /// A remote-loaded value is consumed before it is fenced; the
    /// per-register interlock stalls the core.
    RemoteUseStall,
    /// Static paths execute different barrier-join sequences; the
    /// tile-group barrier deadlocks.
    BarrierMismatch,
    /// A barrier join with posted remote stores still in flight.
    BarrierWithoutFence,
    /// `ecall` with posted remote stores still in flight.
    UnfencedExit,
    /// A memory access whose statically-known address is misaligned.
    UnalignedAccess,
    /// A statically-known address that faults in PGAS translation (SPM
    /// overrun, nonexistent tile or cell, DRAM window overrun).
    SpmOutOfBounds,
    /// An access to a CSR that traps (unknown CSR, load of the store-only
    /// barrier CSR, store to a read-only CSR).
    BadCsrAccess,
    /// An atomic targeting the local SPM/CSR space, or lr/sc (both trap).
    AmoToLocal,
    /// The program image is larger than the instruction cache.
    IcacheFootprint,
    /// A loop body spans more than the instruction cache.
    IcacheLoopSpill,
    /// Two accesses from different tiles can touch the same shared word in
    /// the same barrier phase without ordering (see [`mod@phases`]).
    PhaseRace,
}

impl Rule {
    /// Every rule, in a fixed order.
    pub const ALL: [Rule; 17] = [
        Rule::UseBeforeDef,
        Rule::DeadWrite,
        Rule::UnreachableBlock,
        Rule::FallsOffEnd,
        Rule::IndirectJump,
        Rule::ScoreboardPressure,
        Rule::RemoteUseStall,
        Rule::BarrierMismatch,
        Rule::BarrierWithoutFence,
        Rule::UnfencedExit,
        Rule::UnalignedAccess,
        Rule::SpmOutOfBounds,
        Rule::BadCsrAccess,
        Rule::AmoToLocal,
        Rule::IcacheFootprint,
        Rule::IcacheLoopSpill,
        Rule::PhaseRace,
    ];

    /// The stable kebab-case identifier of this rule.
    pub const fn name(self) -> &'static str {
        match self {
            Rule::UseBeforeDef => "use-before-def",
            Rule::DeadWrite => "dead-write",
            Rule::UnreachableBlock => "unreachable-block",
            Rule::FallsOffEnd => "falls-off-end",
            Rule::IndirectJump => "indirect-jump",
            Rule::ScoreboardPressure => "scoreboard-pressure",
            Rule::RemoteUseStall => "remote-use-stall",
            Rule::BarrierMismatch => "barrier-mismatch",
            Rule::BarrierWithoutFence => "barrier-without-fence",
            Rule::UnfencedExit => "unfenced-exit",
            Rule::UnalignedAccess => "unaligned-access",
            Rule::SpmOutOfBounds => "spm-out-of-bounds",
            Rule::BadCsrAccess => "bad-csr-access",
            Rule::AmoToLocal => "amo-to-local",
            Rule::IcacheFootprint => "icache-footprint",
            Rule::IcacheLoopSpill => "icache-loop-spill",
            Rule::PhaseRace => "phase-race",
        }
    }

    /// Parses a stable rule name back to the rule.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding of the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Byte address of the offending instruction, if the finding anchors to
    /// one (`None` for whole-program findings such as icache footprint).
    pub pc: Option<u32>,
    /// The rule that produced the finding.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(
                f,
                "{}[{}] at {pc:#010x}: {}",
                self.severity, self.rule, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.severity, self.rule, self.message),
        }
    }
}

/// Machine parameters the analyses check against, plus rule suppression.
///
/// Defaults mirror [`MachineConfig::baseline_16x8`]; use
/// [`LintConfig::for_machine`] to lint against a different configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Scratchpad bytes per tile.
    pub spm_bytes: u32,
    /// Instruction-cache bytes per tile.
    pub icache_bytes: u32,
    /// Remote-op scoreboard capacity.
    pub max_outstanding: u32,
    /// Cell tile-array width.
    pub cell_w: u8,
    /// Cell tile-array height.
    pub cell_h: u8,
    /// Number of Cells in the machine.
    pub num_cells: u8,
    /// DRAM window per Cell in bytes.
    pub dram_bytes_per_cell: u32,
    /// Rules whose diagnostics are dropped.
    pub disabled: BTreeSet<Rule>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig::for_machine(&MachineConfig::baseline_16x8())
    }
}

impl LintConfig {
    /// Builds a lint configuration matching a machine configuration.
    pub fn for_machine(cfg: &MachineConfig) -> LintConfig {
        LintConfig {
            spm_bytes: cfg.spm_bytes,
            icache_bytes: cfg.icache_bytes,
            max_outstanding: cfg.max_outstanding as u32,
            cell_w: cfg.cell_dim.x,
            cell_h: cfg.cell_dim.y,
            num_cells: cfg.num_cells,
            dram_bytes_per_cell: cfg.dram_bytes_per_cell,
            disabled: BTreeSet::new(),
        }
    }

    /// Suppresses a rule (builder style).
    pub fn disable(mut self, rule: Rule) -> LintConfig {
        self.disabled.insert(rule);
        self
    }
}

/// Runs every analysis over `program` and returns the findings, sorted by
/// descending severity then ascending address.
pub fn lint(program: &Program, config: &LintConfig) -> Vec<Diagnostic> {
    let graph = cfg::Cfg::build(program);
    let instrs = program.instrs();
    let mut diags = Vec::new();
    dataflow::check_reachability(&graph, &mut diags);
    dataflow::check_use_before_def(&graph, instrs, &mut diags);
    dataflow::check_dead_writes(&graph, instrs, &mut diags);
    absint::check_resources(&graph, instrs, config, &mut diags);
    phases::check_phase_conflicts(&graph, instrs, config, &mut diags);
    diags.retain(|d| !config.disabled.contains(&d.rule));
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.pc.unwrap_or(u32::MAX).cmp(&b.pc.unwrap_or(u32::MAX)))
    });
    diags
}

/// Renders a diagnostic with up to two lines of disassembly context on each
/// side of the offending instruction.
pub fn render(program: &Program, diag: &Diagnostic) -> String {
    use std::fmt::Write;
    let mut out = diag.to_string();
    let Some(pc) = diag.pc else {
        return out;
    };
    let base = program.base();
    if pc < base {
        return out;
    }
    let idx = ((pc - base) / hb_isa::INSTR_BYTES) as usize;
    let instrs = program.instrs();
    if idx >= instrs.len() {
        return out;
    }
    let lo = idx.saturating_sub(2);
    let hi = (idx + 3).min(instrs.len());
    for (i, instr) in instrs.iter().enumerate().take(hi).skip(lo) {
        let marker = if i == idx { ">>>" } else { "   " };
        let at = base + (i as u32) * hb_isa::INSTR_BYTES;
        write!(out, "\n  {marker} {at:08x}:  {instr}").unwrap();
    }
    out
}

/// Why [`AssembleChecked::assemble_checked`] rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Label resolution or encoding failed.
    Asm(AsmError),
    /// The assembled program has `Error`-severity findings (all findings
    /// are included, errors first).
    Lint(Vec<Diagnostic>),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Asm(e) => write!(f, "assembly failed: {e}"),
            CheckError::Lint(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                write!(f, "lint found {errors} error(s):")?;
                for d in diags.iter().filter(|d| d.severity == Severity::Error) {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl From<AsmError> for CheckError {
    fn from(e: AsmError) -> CheckError {
        CheckError::Asm(e)
    }
}

/// Opt-in strict assembly: assemble, then reject the program if the linter
/// finds any `Error`-severity diagnostic.
///
/// Implemented for [`hb_asm::Assembler`]; lives here (not in `hb-asm`) so
/// the assembler crate stays dependency-free.
pub trait AssembleChecked {
    /// Assembles at `base_pc` and lints the result against `config`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::Asm`] if assembly itself fails, or
    /// [`CheckError::Lint`] carrying every finding if any has
    /// [`Severity::Error`].
    fn assemble_checked(&self, base_pc: u32, config: &LintConfig) -> Result<Program, CheckError>;
}

impl AssembleChecked for Assembler {
    fn assemble_checked(&self, base_pc: u32, config: &LintConfig) -> Result<Program, CheckError> {
        let program = self.assemble(base_pc)?;
        let diags = lint(&program, config);
        if diags.iter().any(|d| d.severity == Severity::Error) {
            return Err(CheckError::Lint(diags));
        }
        Ok(program)
    }
}
