//! Shared kernel-authoring helpers.

use hb_asm::Assembler;
use hb_core::HbOps;
use hb_isa::Gpr;

/// Emits the standard kernel prologue: `rank` ← *live* tile-group rank
/// and `nthreads` ← live tile-group size (clobbering `scratch`). Launch
/// arguments stay in `a0..a7`.
///
/// Using the live-rank CSRs instead of `TG_RANK`/`TG_SIZE` makes every
/// rank-strided kernel degrade transparently around tiles disabled via
/// `MachineConfig::disabled_tiles`: live tiles see a dense `0..live_size`
/// rank space and simply cover more work each. With no tiles disabled the
/// CSRs read identically to the plain rank/size, and the load sequence is
/// the same length, so fault-free runs are bit-identical.
pub fn prologue(a: &mut Assembler, rank: Gpr, nthreads: Gpr, scratch: Gpr) {
    a.tg_live_rank(rank, scratch);
    a.tg_live_size(nthreads, scratch);
}

/// Emits a rank-strided loop header over `0..count`: on entry `idx` holds
/// the rank; each iteration the caller advances `idx += nthreads` and
/// branches back while `idx < count`. Returns the loop-top label after
/// binding it; the caller emits the back-branch.
///
/// Typical shape:
/// ```text
/// mv idx, rank
/// top:
///   blt idx, count? -> body, else exit — here the caller handles it
/// ```
/// (Provided as documentation of the idiom; kernels mostly inline it.)
pub fn f32_bits(v: f32) -> u32 {
    v.to_bits()
}

/// Emits `exp(x) ~= (1 + x/256)^256` into `dst` (eight fmuls), matching
/// [`hb_workloads::golden::exp_approx`]. Clobbers `tmp` (FP) and
/// `scratch` (int).
pub fn emit_exp_approx(
    a: &mut Assembler,
    dst: hb_isa::Fpr,
    x: hb_isa::Fpr,
    tmp: hb_isa::Fpr,
    scratch: Gpr,
) {
    // tmp = 1/256
    a.lif(tmp, scratch, 1.0 / 256.0);
    a.fmul(tmp, x, tmp);
    // dst = 1 + tmp
    a.lif(dst, scratch, 1.0);
    a.fadd(dst, dst, tmp);
    for _ in 0..8 {
        a.fmul(dst, dst, dst);
    }
}

/// Emits `ln(x) ~= 2*artanh((x-1)/(x+1))` (4-term series) into `dst`,
/// matching [`hb_workloads::golden::ln_approx`]. Clobbers `t0..t2` (FP)
/// and `scratch`.
pub fn emit_ln_approx(
    a: &mut Assembler,
    dst: hb_isa::Fpr,
    x: hb_isa::Fpr,
    t0: hb_isa::Fpr,
    t1: hb_isa::Fpr,
    t2: hb_isa::Fpr,
    scratch: Gpr,
) {
    use hb_isa::Fpr;
    let one: Fpr = t2;
    a.lif(one, scratch, 1.0);
    // t0 = (x-1), t1 = (x+1), t0 = y = t0/t1
    a.fsub(t0, x, one);
    a.fadd(t1, x, one);
    a.fdiv(t0, t0, t1); // y
    a.fmul(t1, t0, t0); // y2
                        // dst = 1/7
    a.lif(dst, scratch, 1.0 / 7.0);
    a.fmul(dst, dst, t1);
    a.lif(t2, scratch, 1.0 / 5.0);
    a.fadd(dst, dst, t2);
    a.fmul(dst, dst, t1);
    a.lif(t2, scratch, 1.0 / 3.0);
    a.fadd(dst, dst, t2);
    a.fmul(dst, dst, t1);
    a.lif(t2, scratch, 1.0);
    a.fadd(dst, dst, t2);
    a.fmul(dst, dst, t0);
    // dst *= 2
    a.lif(t2, scratch, 2.0);
    a.fmul(dst, dst, t2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::{pgas, CellDim, Machine, MachineConfig};
    use hb_isa::{Fpr::*, Gpr::*};
    use std::sync::Arc;

    /// Runs a one-tile FP snippet and returns the f32 it stores to DRAM.
    fn run_fp_snippet(build: impl Fn(&mut Assembler)) -> f32 {
        let mut cfg = MachineConfig::baseline_16x8();
        cfg.cell_dim = CellDim { x: 1, y: 1 };
        let mut m = Machine::new(cfg);
        let out = m.cell_mut(0).alloc(4, 64);
        let mut a = Assembler::new();
        build(&mut a);
        // fa0 holds the result; a0 the output EVA.
        a.fsw(Fa0, A0, 0);
        a.fence();
        a.ecall();
        let p = Arc::new(a.assemble(0).unwrap());
        m.launch(0, &p, &[pgas::local_dram(out)]);
        m.run(1_000_000).unwrap();
        m.cell_mut(0).flush_caches();
        m.cell(0).dram().read_f32(out)
    }

    #[test]
    fn exp_matches_golden() {
        for x in [-2.0f32, -0.5, 0.0, 1.0, 2.5] {
            let got = run_fp_snippet(|a| {
                a.lif(Fa1, T0, x);
                emit_exp_approx(a, Fa0, Fa1, Ft0, T0);
            });
            let want = hb_workloads::golden::exp_approx(x);
            assert!(
                (got - want).abs() <= want.abs() * 1e-6 + 1e-9,
                "exp({x}): sim {got} vs golden {want}"
            );
        }
    }

    #[test]
    fn ln_matches_golden() {
        for x in [0.3f32, 1.0, 2.0, 7.5] {
            let got = run_fp_snippet(|a| {
                a.lif(Fa1, T0, x);
                emit_ln_approx(a, Fa0, Fa1, Ft0, Ft1, Ft2, T0);
            });
            let want = hb_workloads::golden::ln_approx(x);
            assert!(
                (got - want).abs() <= 1e-5,
                "ln({x}): sim {got} vs golden {want}"
            );
        }
    }
}
