//! Packet payloads carried on the request and response networks.
//!
//! Every RISC-V remote memory operation becomes one single-flit request
//! packet; Load Packet Compression lets one packet carry up to four
//! consecutive word loads (one base address plus destination-register
//! bookkeeping kept at the issuing tile).

use hb_isa::AmoOp;
use hb_noc::Coord;

/// Identifies a network endpoint across the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Cell index.
    pub cell: u8,
    /// Node coordinate within that Cell's network grid.
    pub coord: Coord,
}

/// A remote memory operation (request-network payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Issuing endpoint (where the response must return).
    pub from: NodeId,
    /// Tile-local operation tag; echoed in the response.
    pub op_id: u32,
    /// The operation.
    pub kind: ReqKind,
}

/// Kinds of [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Load `count` consecutive naturally-aligned values of `width` bytes
    /// starting at `addr` (count > 1 only with Load Packet Compression,
    /// width 4).
    Load {
        /// Target-local byte address (SPM offset or Cell-DRAM address).
        addr: u32,
        /// Access width: 1, 2 or 4.
        width: u8,
        /// Number of consecutive words (1..=4).
        count: u8,
    },
    /// Store `width` bytes of `data` at `addr`.
    Store {
        /// Target-local byte address.
        addr: u32,
        /// Access width: 1, 2 or 4.
        width: u8,
        /// Data (low `width` bytes significant).
        data: u32,
    },
    /// Atomic read-modify-write of the word at `addr`; returns the old
    /// value.
    Amo {
        /// Target-local byte address (word aligned).
        addr: u32,
        /// The atomic operation.
        op: AmoOp,
        /// Operand.
        data: u32,
    },
}

impl ReqKind {
    /// Bytes of payload data this request reads or writes at the target.
    pub fn bytes(&self) -> u32 {
        match *self {
            ReqKind::Load { width, count, .. } => u32::from(width) * u32::from(count),
            ReqKind::Store { width, .. } => u32::from(width),
            ReqKind::Amo { .. } => 4,
        }
    }
}

/// A completion (response-network payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Tag from the originating request.
    pub op_id: u32,
    /// The completion data.
    pub kind: RespKind,
}

/// Kinds of [`Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespKind {
    /// Loaded values (`count` of them, zero-extended words).
    Load {
        /// One word per compressed load.
        data: [u32; 4],
        /// Valid entries in `data`.
        count: u8,
    },
    /// A store was performed (scoreboard credit).
    StoreAck,
    /// Old value from an atomic operation.
    AmoOld {
        /// The value before the AMO applied.
        data: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes() {
        let load4 = ReqKind::Load {
            addr: 0,
            width: 4,
            count: 4,
        };
        assert_eq!(load4.bytes(), 16);
        let store = ReqKind::Store {
            addr: 0,
            width: 2,
            data: 7,
        };
        assert_eq!(store.bytes(), 2);
        let amo = ReqKind::Amo {
            addr: 0,
            op: AmoOp::Add,
            data: 1,
        };
        assert_eq!(amo.bytes(), 4);
    }
}
