//! `hb-iss` — a fast functional RV32IMAF instruction-set simulator.
//!
//! This is the repo's *golden model*: an architectural interpreter over the
//! same [`hb_isa`] decoder and operation semantics the cycle-level tile
//! uses, but with no pipeline, network, cache or timing state. It fills
//! three roles (see DESIGN.md §hb-iss):
//!
//! 1. **Oracle** — lockstep co-simulation retires the 1.1k-line cycle-level
//!    tile against [`Hart`] instruction-by-instruction and reports the
//!    first architectural divergence.
//! 2. **Fast path** — `Machine::warmup_functional` in `hb-core` executes
//!    kernel init phases here (two to three orders of magnitude faster than
//!    cycle simulation, rvr-style) and injects the resulting state into
//!    tiles.
//! 3. **Fuzz reference** — [`fuzz::gen_sequence`] generates deterministic
//!    seeded legal instruction sequences run on both models.
//!
//! The interpreter core is allocation-free: [`Hart::step`] touches only the
//! register arrays and the pluggable [`Bus`]; the default [`SparseMem`] bus
//! allocates 4 KiB pages only on first write to a page.
//!
//! Memory is *pluggable*: the ISS does not know HammerBlade's PGAS layout.
//! `hb-core` provides a bus that translates EVAs exactly like a tile does
//! (SPM, CSRs, group SPM, DRAM); the plain [`SparseMem`] treats addresses
//! as one flat 32-bit space, which is what standalone interpreter runs and
//! unit tests want.

pub mod fuzz;
mod hart;
mod mem;

pub use hart::{Hart, IssFault, IssStats, Step, StopReason};
pub use mem::{Bus, SparseMem, StoreEffect, PAGE_BYTES};
