//! Minimal flat-JSON support for store records: one-level objects whose
//! values are strings or unsigned integers. Hand-written like `hb-obs`'s
//! exporters — the workspace deliberately has no serde. Strict enough for
//! our own records; not a general JSON parser.

use std::collections::BTreeMap;

/// A parsed flat-object value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A JSON string (unescaped).
    Str(String),
    /// An unsigned integer.
    Num(u64),
}

/// Quotes and escapes `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a single flat JSON object (`{"k":"v","n":3}`) into a key → value
/// map. Values must be strings or unsigned integers; nesting is rejected.
///
/// # Errors
///
/// Returns a message describing the first syntax problem.
pub fn parse_object(text: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut map = BTreeMap::new();
    let bytes = text.trim().as_bytes();
    let mut i = 0usize;
    let err = |i: usize, what: &str| format!("json byte {i}: {what}");
    if bytes.first() != Some(&b'{') {
        return Err(err(0, "expected '{'"));
    }
    i += 1;
    skip_ws(bytes, &mut i);
    if bytes.get(i) == Some(&b'}') {
        if i + 1 == bytes.len() {
            return Ok(map);
        }
        return Err(err(i + 1, "trailing garbage"));
    }
    loop {
        skip_ws(bytes, &mut i);
        let key = parse_string(bytes, &mut i)?;
        skip_ws(bytes, &mut i);
        if bytes.get(i) != Some(&b':') {
            return Err(err(i, "expected ':'"));
        }
        i += 1;
        skip_ws(bytes, &mut i);
        let value = match bytes.get(i) {
            Some(b'"') => JsonValue::Str(parse_string(bytes, &mut i)?),
            Some(c) if c.is_ascii_digit() => {
                let start = i;
                while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                JsonValue::Num(
                    text.parse()
                        .map_err(|_| err(start, "integer out of range"))?,
                )
            }
            _ => return Err(err(i, "expected string or unsigned integer value")),
        };
        if map.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(bytes, &mut i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                skip_ws(bytes, &mut i);
                if i == bytes.len() {
                    return Ok(map);
                }
                return Err(err(i, "trailing garbage"));
            }
            _ => return Err(err(i, "expected ',' or '}'")),
        }
    }
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while bytes.get(*i).is_some_and(|b| b.is_ascii_whitespace()) {
        *i += 1;
    }
}

fn parse_string(bytes: &[u8], i: &mut usize) -> Result<String, String> {
    if bytes.get(*i) != Some(&b'"') {
        return Err(format!("json byte {i}: expected '\"'", i = *i));
    }
    *i += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*i) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match bytes.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                        *i += 4;
                    }
                    _ => return Err("unknown escape".to_owned()),
                }
                *i += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (records hold only our own text,
                // but labels may be non-ASCII).
                let rest =
                    std::str::from_utf8(&bytes[*i..]).map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *i += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_and_parse_roundtrip() {
        let obj = format!(
            "{{\"plain\":{},\"tricky\":{},\"n\":42}}",
            quote("hello"),
            quote("a\"b\\c\nd\tz")
        );
        let map = parse_object(&obj).unwrap();
        assert_eq!(map["plain"], JsonValue::Str("hello".to_owned()));
        assert_eq!(map["tricky"], JsonValue::Str("a\"b\\c\nd\tz".to_owned()));
        assert_eq!(map["n"], JsonValue::Num(42));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "{}x",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":-1}",
            "{\"a\":{}}",
            "{\"a\":1}{",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(parse_object(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object(" { } ").unwrap().is_empty());
    }
}
