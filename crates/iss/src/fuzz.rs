//! Deterministic generator of legal RV32IMAF instruction sequences for
//! differential fuzzing (ISS vs. cycle-level tile).
//!
//! Sequences are *legal by construction* for both execution models:
//!
//! - Control flow is forward-only (branches and `jal` skip ahead a bounded
//!   distance), so every sequence terminates within its own length.
//! - Memory accesses go through three reserved base registers kept pinned
//!   at caller-supplied windows (`t0` → scratchpad, `t1` → DRAM, `t2` → a
//!   word-aligned DRAM AMO address), naturally aligned, in bounds.
//! - AMOs target only the DRAM window (the tile traps on AMOs to the
//!   local-SPM space) and `lr/sc`, `ebreak`, `jalr` and CSR accesses are
//!   never generated.
//! - The sequence ends with `fence; ecall` so the tile quiesces its
//!   remote-operation scoreboard before comparison.
//!
//! Everything else — including NaN-producing FP arithmetic and div-by-zero
//! — is fair game, because both models evaluate operations through the
//! identical `hb_isa` semantics.

use hb_isa::{
    AmoOp, BranchOp, FmaOp, FpCmp, FpOp, Fpr, Gpr, Instr, LoadWidth, OpImmOp, OpOp, StoreWidth,
};
use hb_rng::Rng;

/// Shape of one generated sequence.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of generated body instructions (the trailing `fence; ecall`
    /// comes on top).
    pub len: usize,
    /// Base EVA of the scratchpad load/store window.
    pub spm_base: u32,
    /// Window length in bytes (≤ 2048 so offsets fit an I-immediate).
    pub spm_len: u32,
    /// Base EVA of the DRAM load/store window.
    pub dram_base: u32,
    /// Window length in bytes (≤ 2048).
    pub dram_len: u32,
}

/// Base register pinned at the scratchpad window.
const SPM_BASE: Gpr = Gpr::T0;
/// Base register pinned at the DRAM window.
const DRAM_BASE: Gpr = Gpr::T1;
/// Register holding the current AMO target address.
const AMO_ADDR: Gpr = Gpr::T2;

fn is_reserved(r: Gpr) -> bool {
    matches!(r, Gpr::T0 | Gpr::T1 | Gpr::T2)
}

/// `li rd, value` as a lui+addi pair (always two instructions).
fn li_u(rd: Gpr, value: u32) -> [Instr; 2] {
    let hi = value.wrapping_add(0x800) >> 12;
    let lo = value.wrapping_sub(hi << 12) as i32;
    // Encode the 20-bit immediate as the signed field LUI carries.
    let hi_imm = ((hi << 12) as i32) >> 12;
    [
        Instr::Lui { rd, imm: hi_imm },
        Instr::OpImm {
            op: OpImmOp::Addi,
            rd,
            rs1: rd,
            imm: lo,
        },
    ]
}

fn any_gpr(rng: &mut Rng) -> Gpr {
    Gpr::from_index(rng.range_u32(0, 32) as u8)
}

/// Any GPR except the reserved window bases (valid as a destination).
fn dst_gpr(rng: &mut Rng) -> Gpr {
    loop {
        let r = any_gpr(rng);
        if !is_reserved(r) {
            return r;
        }
    }
}

fn any_fpr(rng: &mut Rng) -> Fpr {
    Fpr::from_index(rng.range_u32(0, 32) as u8)
}

/// Aligned offset for a `width`-byte access inside a `len`-byte window.
fn aligned_offset(rng: &mut Rng, len: u32, width: u32) -> i32 {
    (rng.range_u32(0, len / width) * width) as i32
}

/// Points `t2` at a fresh word-aligned DRAM address. A *single*
/// instruction (off the never-clobbered `t1` base) so forward branches can
/// never land in the middle of a re-pin and leave `t2` out of the window.
fn amo_repin(rng: &mut Rng, cfg: &FuzzConfig) -> Instr {
    Instr::OpImm {
        op: OpImmOp::Addi,
        rd: AMO_ADDR,
        rs1: DRAM_BASE,
        imm: aligned_offset(rng, cfg.dram_len, 4),
    }
}

/// Generates one legal instruction sequence. Equal `(seed, cfg)` always
/// produce the identical sequence.
pub fn gen_sequence(seed: u64, cfg: &FuzzConfig) -> Vec<Instr> {
    assert!(
        cfg.spm_len >= 4 && cfg.spm_len <= 2048,
        "spm window must fit I-immediates"
    );
    assert!(
        cfg.dram_len >= 4 && cfg.dram_len <= 2048,
        "dram window must fit I-immediates"
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(cfg.len + 8);
    out.extend(li_u(SPM_BASE, cfg.spm_base));
    out.extend(li_u(DRAM_BASE, cfg.dram_base));
    out.push(amo_repin(&mut rng, cfg));

    while out.len() < cfg.len {
        let remaining = cfg.len - out.len();
        match rng.index(100) {
            // ALU immediate (also the occasional LUI/AUIPC).
            0..=22 => {
                let op = *rng.pick(&OpImmOp::ALL);
                let imm = match op {
                    OpImmOp::Slli | OpImmOp::Srli | OpImmOp::Srai => rng.range_i64(0, 32) as i32,
                    _ => rng.range_i64(-2048, 2048) as i32,
                };
                out.push(Instr::OpImm {
                    op,
                    rd: dst_gpr(&mut rng),
                    rs1: any_gpr(&mut rng),
                    imm,
                });
            }
            23..=27 => {
                let imm = rng.range_i64(-(1 << 19), 1 << 19) as i32;
                if rng.chance(0.5) {
                    out.push(Instr::Lui {
                        rd: dst_gpr(&mut rng),
                        imm,
                    });
                } else {
                    out.push(Instr::Auipc {
                        rd: dst_gpr(&mut rng),
                        imm,
                    });
                }
            }
            // ALU register-register (full M extension).
            28..=49 => {
                let op = *rng.pick(&OpOp::ALL);
                out.push(Instr::Op {
                    op,
                    rd: dst_gpr(&mut rng),
                    rs1: any_gpr(&mut rng),
                    rs2: any_gpr(&mut rng),
                });
            }
            // Integer loads/stores, split between the SPM and DRAM windows.
            50..=59 => {
                let (base, len) = if rng.chance(0.5) {
                    (SPM_BASE, cfg.spm_len)
                } else {
                    (DRAM_BASE, cfg.dram_len)
                };
                let width = *rng.pick(&LoadWidth::ALL);
                out.push(Instr::Load {
                    width,
                    rd: dst_gpr(&mut rng),
                    rs1: base,
                    offset: aligned_offset(&mut rng, len, width.bytes()),
                });
            }
            60..=69 => {
                let (base, len) = if rng.chance(0.5) {
                    (SPM_BASE, cfg.spm_len)
                } else {
                    (DRAM_BASE, cfg.dram_len)
                };
                let width = *rng.pick(&StoreWidth::ALL);
                out.push(Instr::Store {
                    width,
                    rs1: base,
                    rs2: any_gpr(&mut rng),
                    offset: aligned_offset(&mut rng, len, width.bytes()),
                });
            }
            // FP loads/stores.
            70..=74 => {
                let (base, len) = if rng.chance(0.5) {
                    (SPM_BASE, cfg.spm_len)
                } else {
                    (DRAM_BASE, cfg.dram_len)
                };
                let offset = aligned_offset(&mut rng, len, 4);
                if rng.chance(0.5) {
                    out.push(Instr::Flw {
                        rd: any_fpr(&mut rng),
                        rs1: base,
                        offset,
                    });
                } else {
                    out.push(Instr::Fsw {
                        rs1: base,
                        rs2: any_fpr(&mut rng),
                        offset,
                    });
                }
            }
            // FP compute: moves in, arithmetic, FMA, compares, converts.
            75..=89 => match rng.index(6) {
                0 => out.push(Instr::FmvWX {
                    rd: any_fpr(&mut rng),
                    rs1: any_gpr(&mut rng),
                }),
                1 => {
                    let op = *rng.pick(&FpOp::ALL);
                    let rs2 = if op == FpOp::Sqrt {
                        Fpr::Ft0
                    } else {
                        any_fpr(&mut rng)
                    };
                    out.push(Instr::FpOp {
                        op,
                        rd: any_fpr(&mut rng),
                        rs1: any_fpr(&mut rng),
                        rs2,
                    });
                }
                2 => out.push(Instr::Fma {
                    op: *rng.pick(&FmaOp::ALL),
                    rd: any_fpr(&mut rng),
                    rs1: any_fpr(&mut rng),
                    rs2: any_fpr(&mut rng),
                    rs3: any_fpr(&mut rng),
                }),
                3 => out.push(Instr::FpCmp {
                    op: *rng.pick(&FpCmp::ALL),
                    rd: dst_gpr(&mut rng),
                    rs1: any_fpr(&mut rng),
                    rs2: any_fpr(&mut rng),
                }),
                4 => {
                    if rng.chance(0.5) {
                        out.push(Instr::FcvtWS {
                            rd: dst_gpr(&mut rng),
                            rs1: any_fpr(&mut rng),
                        });
                    } else {
                        out.push(Instr::FcvtWuS {
                            rd: dst_gpr(&mut rng),
                            rs1: any_fpr(&mut rng),
                        });
                    }
                }
                _ => {
                    if rng.chance(0.5) {
                        out.push(Instr::FcvtSW {
                            rd: any_fpr(&mut rng),
                            rs1: any_gpr(&mut rng),
                        });
                    } else {
                        out.push(Instr::FmvXW {
                            rd: dst_gpr(&mut rng),
                            rs1: any_fpr(&mut rng),
                        });
                    }
                }
            },
            // AMOs to the pinned DRAM word; re-pin the address afterwards
            // about half the time so different words get hit.
            90..=93 => {
                out.push(Instr::Amo {
                    op: *rng.pick(&AmoOp::ALL),
                    rd: dst_gpr(&mut rng),
                    rs1: AMO_ADDR,
                    rs2: any_gpr(&mut rng),
                    aq: false,
                    rl: false,
                });
                if rng.chance(0.5) {
                    out.push(amo_repin(&mut rng, cfg));
                }
            }
            // Forward-only control flow (bounded skip ⇒ always terminates).
            94..=97 => {
                if remaining < 2 {
                    out.push(Instr::NOP);
                    continue;
                }
                let max_skip = remaining.min(12) as u64;
                let offset = 4 * (1 + rng.below(max_skip)) as i32;
                out.push(Instr::Branch {
                    op: *rng.pick(&BranchOp::ALL),
                    rs1: any_gpr(&mut rng),
                    rs2: any_gpr(&mut rng),
                    offset,
                });
            }
            98 => {
                if remaining < 2 {
                    out.push(Instr::NOP);
                    continue;
                }
                let max_skip = remaining.min(12) as u64;
                let offset = 4 * (1 + rng.below(max_skip)) as i32;
                out.push(Instr::Jal {
                    rd: dst_gpr(&mut rng),
                    offset,
                });
            }
            // The occasional fence is architecturally a no-op but exercises
            // the tile's quiesce path mid-stream.
            _ => out.push(Instr::Fence),
        }
    }

    out.push(Instr::Fence);
    out.push(Instr::Ecall);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hart, SparseMem, StopReason};
    use hb_asm::Assembler;

    fn cfg() -> FuzzConfig {
        FuzzConfig {
            len: 200,
            spm_base: 0x100,
            spm_len: 1024,
            dram_base: 0xbf00_0000,
            dram_len: 2048,
        }
    }

    #[test]
    fn sequences_are_deterministic_and_distinct() {
        let c = cfg();
        assert_eq!(gen_sequence(7, &c), gen_sequence(7, &c));
        assert_ne!(gen_sequence(7, &c), gen_sequence(8, &c));
    }

    #[test]
    fn sequences_never_contain_illegal_instructions() {
        let c = cfg();
        for seed in 0..50 {
            for i in gen_sequence(seed, &c) {
                assert!(
                    !matches!(
                        i,
                        Instr::LrW { .. } | Instr::ScW { .. } | Instr::Ebreak | Instr::Jalr { .. }
                    ),
                    "seed {seed} generated {i:?}"
                );
            }
        }
    }

    #[test]
    fn every_sequence_terminates_on_the_iss() {
        let c = cfg();
        for seed in 0..100 {
            let body = gen_sequence(seed, &c);
            let n = body.len() as u64;
            let mut a = Assembler::new();
            for &i in &body {
                a.emit(i);
            }
            let p = a.assemble(0).unwrap();
            let mut h = Hart::new();
            h.launch(p.base(), &[], 4096);
            let mut m = SparseMem::new();
            let stop = h
                .run(&p, &mut m, n + 10)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(stop, StopReason::Ecall, "seed {seed} did not reach ecall");
        }
    }
}
