//! Matrix Market (`.mtx`) import/export.
//!
//! The paper's evaluation inputs (wiki-Vote, roadNet-CA, hollywood-2009,
//! ...) are distributed by the SuiteSparse collection in Matrix Market
//! format. The synthetic generators in [`crate::gen`] stand in for them
//! offline; this parser lets users drop in the real files when they have
//! them. Supports the `matrix coordinate` variants used by SuiteSparse:
//! `real` / `integer` / `pattern` values, `general` / `symmetric`
//! symmetry.

use crate::csr::CsrMatrix;
use std::fmt;

/// Error from parsing a Matrix Market file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtxError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mtx line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MtxError {}

fn err(line: usize, message: impl Into<String>) -> MtxError {
    MtxError {
        line,
        message: message.into(),
    }
}

/// Parses Matrix Market coordinate text into CSR.
///
/// # Errors
///
/// Returns [`MtxError`] for malformed headers, unsupported formats
/// (`array`, `complex`, `hermitian`, `skew-symmetric`) and out-of-range
/// entries.
pub fn parse_mtx(src: &str) -> Result<CsrMatrix, MtxError> {
    let mut lines = src.lines().enumerate().map(|(i, l)| (i + 1, l));

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (hline, header) = lines.next().ok_or_else(|| err(0, "empty file"))?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() != 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(err(
            hline,
            "expected `%%MatrixMarket matrix coordinate ...` header",
        ));
    }
    if !toks[1].eq_ignore_ascii_case("matrix") || !toks[2].eq_ignore_ascii_case("coordinate") {
        return Err(err(
            hline,
            format!("unsupported object/format `{} {}`", toks[1], toks[2]),
        ));
    }
    let pattern = match toks[3].to_ascii_lowercase().as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => return Err(err(hline, format!("unsupported field `{other}`"))),
    };
    let symmetric = match toks[4].to_ascii_lowercase().as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(err(hline, format!("unsupported symmetry `{other}`"))),
    };

    // Size line (after comments).
    let mut size = None;
    for (ln, l) in lines.by_ref() {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(err(ln, format!("bad size line `{t}`")));
        }
        let rows: u32 = parts[0].parse().map_err(|_| err(ln, "bad row count"))?;
        let cols: u32 = parts[1].parse().map_err(|_| err(ln, "bad col count"))?;
        let nnz: usize = parts[2].parse().map_err(|_| err(ln, "bad nnz count"))?;
        size = Some((rows, cols, nnz));
        break;
    }
    let (rows, cols, nnz) = size.ok_or_else(|| err(0, "missing size line"))?;

    let mut triples = Vec::with_capacity(if symmetric { nnz * 2 } else { nnz });
    let mut seen = 0usize;
    for (ln, l) in lines {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let want = if pattern { 2 } else { 3 };
        if parts.len() < want {
            return Err(err(ln, format!("entry `{t}` has too few fields")));
        }
        let r: u32 = parts[0].parse().map_err(|_| err(ln, "bad row index"))?;
        let c: u32 = parts[1].parse().map_err(|_| err(ln, "bad col index"))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(err(
                ln,
                format!("index ({r},{c}) outside {rows}x{cols} (1-based)"),
            ));
        }
        let v: f32 = if pattern {
            1.0
        } else {
            parts[2]
                .parse()
                .map_err(|_| err(ln, format!("bad value `{}`", parts[2])))?
        };
        triples.push((r - 1, c - 1, v));
        if symmetric && r != c {
            triples.push((c - 1, r - 1, v));
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(err(
            0,
            format!("size line promised {nnz} entries, found {seen}"),
        ));
    }
    Ok(CsrMatrix::from_triples(rows, cols, &triples))
}

/// Serializes a CSR matrix as `matrix coordinate real general` text.
pub fn to_mtx(m: &CsrMatrix) -> String {
    use std::fmt::Write;
    let mut out = String::from("%%MatrixMarket matrix coordinate real general\n");
    let _ = writeln!(out, "{} {} {}", m.rows, m.cols, m.nnz());
    for r in 0..m.rows {
        let (cols, vals) = m.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            let _ = writeln!(out, "{} {} {}", r + 1, c + 1, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parses_general_real() {
        let m = parse_mtx(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             3 3 3\n\
             1 2 1.5\n\
             2 1 -2\n\
             3 3 0.25\n",
        )
        .unwrap();
        assert_eq!(m.rows, 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[1u32][..], &[1.5f32][..]));
    }

    #[test]
    fn symmetric_mirrors_entries() {
        let m = parse_mtx(
            "%%MatrixMarket matrix coordinate pattern symmetric\n\
             3 3 2\n\
             2 1\n\
             3 1\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.degree(0), 2);
    }

    #[test]
    fn pattern_entries_get_unit_values() {
        let m =
            parse_mtx("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n").unwrap();
        assert_eq!(m.vals, vec![1.0]);
    }

    #[test]
    fn round_trips_through_text() {
        let m = gen::uniform_sparse(16, 16, 3, 9);
        let text = to_mtx(&m);
        let back = parse_mtx(&text).unwrap();
        assert_eq!(back.rows, m.rows);
        assert_eq!(back.col_idx, m.col_idx);
        for (a, b) in back.vals.iter().zip(&m.vals) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(parse_mtx("nope\n").is_err());
        assert!(parse_mtx("%%MatrixMarket matrix array real general\n2 2 1\n").is_err());
        assert!(
            parse_mtx("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n").is_err(),
            "nnz mismatch must be detected"
        );
        assert!(
            parse_mtx("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n").is_err(),
            "out-of-range index must be detected"
        );
    }
}
