//! Group-SPM stencil (paper Figure 7): runs the Jacobi benchmark kernel,
//! whose tiles read their lateral neighbors' scratchpads directly with
//! pipelined non-blocking remote loads, and prints the resulting
//! utilization profile.
//!
//! Run with: `cargo run --release --example stencil_group_spm`

use hammerblade::core::{utilization_report, MachineConfig};
use hammerblade::kernels::{Benchmark, Jacobi, SizeClass};

fn main() {
    let cfg = MachineConfig::baseline_16x8();
    let jacobi = Jacobi { z: 128, steps: 4 };
    println!(
        "running a {}x{}x{} Jacobi stencil for {} steps on a {}x{} Cell...",
        cfg.cell_dim.x, cfg.cell_dim.y, jacobi.z, jacobi.steps, cfg.cell_dim.x, cfg.cell_dim.y
    );
    let stats = jacobi
        .run(&cfg, SizeClass::Small)
        .expect("jacobi validates");
    println!(
        "\nvalidated against the golden 7-point stencil in {} cycles",
        stats.cycles
    );
    println!(
        "{} remote scratchpad/cache requests, {} merged by load-packet compression\n",
        stats.core.remote_requests, stats.core.lpc_merged
    );
    println!("core cycle breakdown:\n{}", utilization_report(&stats.core));
    println!(
        "HBM2: {:.1}% read / {:.1}% write / {:.1}% idle",
        stats.hbm.read_cycles as f64 / stats.hbm.denominator() as f64 * 100.0,
        stats.hbm.write_cycles as f64 / stats.hbm.denominator() as f64 * 100.0,
        stats.hbm.idle_cycles as f64 / stats.hbm.denominator() as f64 * 100.0,
    );
}
