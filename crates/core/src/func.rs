//! Functional (ISS-backed) execution over HammerBlade's PGAS address map.
//!
//! [`hb_iss::Hart`] knows nothing about EVAs; this module supplies the
//! missing half: [`FuncBus`] translates every load/store/AMO exactly like a
//! cycle-level tile does — SPM bounds traps, CSR reads, group-SPM
//! redirection, DRAM banks — but applies them immediately instead of
//! issuing network requests. Three consumers build on it:
//!
//! * [`IssTile`] — a standalone functional copy of one launched tile, used
//!   by the throughput benchmark and the differential fuzzer.
//! * [`crate::cosim::CosimChecker`] — lockstep co-simulation oracle.
//! * [`crate::Machine::warmup_functional`] — fast-forward of kernel init
//!   phases.
//!
//! One intentional divergence from the tile: sub-word (`lb`/`lh`) reads of
//! CSR space are sign-extended here but not by the tile. Kernels read CSRs
//! with `lw`, where the two agree bit-for-bit.

use crate::machine::{Machine, SimError};
use crate::pgas::{csr, PgasMap, Target};
use crate::tile::GroupInfo;
use hb_asm::Program;
use hb_isa::AmoOp;
use hb_iss::{Bus, Hart, IssFault, StopReason, StoreEffect};
use hb_noc::Coord;
use std::sync::Arc;

fn read_bytes(buf: &[u8], offset: u32, width: u8) -> u32 {
    let o = offset as usize;
    let mut v = 0u32;
    for i in (0..width as usize).rev() {
        v = (v << 8) | u32::from(buf[o + i]);
    }
    v
}

fn write_bytes(buf: &mut [u8], offset: u32, width: u8, value: u32) {
    let o = offset as usize;
    for i in 0..width as usize {
        buf[o + i] = (value >> (8 * i)) as u8;
    }
}

/// DRAM backing for a [`FuncBus`]: either an owned snapshot
/// ([`SnapshotDram`]) or the machine's real DRAM ([`BorrowedDram`]).
pub trait DramStore {
    /// Reads `width` bytes at a Cell-local address.
    fn read(&mut self, cell: u8, addr: u32, width: u8) -> u32;
    /// Writes the low `width` bytes of `data`.
    fn write(&mut self, cell: u8, addr: u32, width: u8, data: u32);
    /// Applies an AMO, returning the old word.
    fn amo(&mut self, cell: u8, addr: u32, op: AmoOp, data: u32) -> u32 {
        let old = self.read(cell, addr, 4);
        self.write(cell, addr, 4, op.apply(old, data));
        old
    }
}

impl<D: DramStore + ?Sized> DramStore for &mut D {
    fn read(&mut self, cell: u8, addr: u32, width: u8) -> u32 {
        (**self).read(cell, addr, width)
    }
    fn write(&mut self, cell: u8, addr: u32, width: u8, data: u32) {
        (**self).write(cell, addr, width, data);
    }
}

/// A private copy of every Cell's DRAM contents.
///
/// Functional runs against a snapshot leave the machine untouched, and the
/// co-simulation checker compares its snapshot against the real DRAM after
/// the caches flush.
#[derive(Debug, Clone)]
pub struct SnapshotDram {
    cells: Vec<Vec<u8>>,
}

impl SnapshotDram {
    /// Copies the DRAM of every Cell in `machine`.
    pub fn from_machine(machine: &Machine) -> SnapshotDram {
        let cells = (0..machine.num_cells())
            .map(|c| {
                let dram = machine.cell(c as u8).dram();
                dram.slice(0, dram.len()).to_vec()
            })
            .collect();
        SnapshotDram { cells }
    }

    /// The snapshot of Cell `cell`.
    pub fn cell(&self, cell: u8) -> &[u8] {
        &self.cells[cell as usize]
    }
}

impl DramStore for SnapshotDram {
    fn read(&mut self, cell: u8, addr: u32, width: u8) -> u32 {
        read_bytes(&self.cells[cell as usize], addr, width)
    }
    fn write(&mut self, cell: u8, addr: u32, width: u8, data: u32) {
        write_bytes(&mut self.cells[cell as usize], addr, width, data);
    }
}

/// Direct mutable access to every Cell's real DRAM (fast-forward writes
/// kernel init state straight into the machine).
#[derive(Debug)]
pub struct BorrowedDram<'a> {
    cells: Vec<&'a mut hb_mem::Dram>,
}

impl<'a> BorrowedDram<'a> {
    /// Wraps mutable borrows of each Cell's DRAM, in Cell-id order.
    pub fn new(cells: Vec<&'a mut hb_mem::Dram>) -> BorrowedDram<'a> {
        BorrowedDram { cells }
    }
}

impl DramStore for BorrowedDram<'_> {
    fn read(&mut self, cell: u8, addr: u32, width: u8) -> u32 {
        let d = &self.cells[cell as usize];
        match width {
            1 => u32::from(d.read_u8(addr)),
            2 => u32::from(d.read_u16(addr)),
            _ => d.read_u32(addr),
        }
    }
    fn write(&mut self, cell: u8, addr: u32, width: u8, data: u32) {
        let d = &mut self.cells[cell as usize];
        match width {
            1 => d.write_u8(addr, data as u8),
            2 => d.write_u16(addr, data as u16),
            _ => d.write_u32(addr, data),
        }
    }
}

/// Per-hart identity: everything the CSR file and the group-SPM
/// redirection need to know about "which tile am I".
#[derive(Debug, Clone, Copy)]
pub struct TileCtx {
    /// Tile coordinates within the Cell.
    pub xy: (u8, u8),
    /// Tile-group identity (CSRs).
    pub group: GroupInfo,
    /// Kernel arguments (ARG CSRs).
    pub args: [u32; 8],
}

/// A [`Bus`] with cycle-level-tile memory semantics over one Cell.
///
/// Holds the scratchpads of every modelled tile in the Cell (so group-SPM
/// accesses between them resolve), per-tile CSR identity, and a pluggable
/// [`DramStore`]. Before stepping a hart, select its tile with
/// [`FuncBus::set_cur`]; feed the CYCLE CSR with [`FuncBus::set_now`].
#[derive(Debug)]
pub struct FuncBus<D> {
    pgas: PgasMap,
    ctxs: Vec<TileCtx>,
    spms: Vec<Vec<u8>>,
    cur: usize,
    now: u64,
    /// The DRAM side of the address space.
    pub dram: D,
}

impl<D: DramStore> FuncBus<D> {
    /// Builds a bus over `tiles` (context + initial SPM image pairs, all in
    /// the Cell `pgas` describes) and `dram`.
    pub fn new(pgas: PgasMap, tiles: Vec<(TileCtx, Vec<u8>)>, dram: D) -> FuncBus<D> {
        assert!(!tiles.is_empty(), "a FuncBus needs at least one tile");
        let (ctxs, spms) = tiles.into_iter().unzip();
        FuncBus {
            pgas,
            ctxs,
            spms,
            cur: 0,
            now: 0,
            dram,
        }
    }

    /// Selects which modelled tile issues subsequent accesses.
    pub fn set_cur(&mut self, idx: usize) {
        assert!(idx < self.ctxs.len());
        self.cur = idx;
    }

    /// Sets the value the CYCLE CSR reads (co-simulation forwards the
    /// cycle-level clock here so both models see identical time).
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// The SPM image of modelled tile `idx`.
    pub fn spm(&self, idx: usize) -> &[u8] {
        &self.spms[idx]
    }

    /// Mutable SPM image of modelled tile `idx`.
    pub fn spm_mut(&mut self, idx: usize) -> &mut Vec<u8> {
        &mut self.spms[idx]
    }

    /// The context of modelled tile `idx`.
    pub fn ctx(&self, idx: usize) -> &TileCtx {
        &self.ctxs[idx]
    }

    fn tile_index(&self, tile: Coord) -> Result<usize, String> {
        self.ctxs
            .iter()
            .position(|c| c.xy.0 == tile.x && c.xy.1 == tile.y)
            .ok_or_else(|| {
                format!(
                    "functional access to unmodelled tile ({},{})",
                    tile.x, tile.y
                )
            })
    }

    /// Mirror of the tile's CSR file.
    fn csr_read(&self, offset: u32) -> Option<u32> {
        let ctx = &self.ctxs[self.cur];
        Some(match offset {
            csr::TILE_X => u32::from(ctx.xy.0),
            csr::TILE_Y => u32::from(ctx.xy.1),
            csr::TG_X => u32::from(ctx.group.origin.0),
            csr::TG_Y => u32::from(ctx.group.origin.1),
            csr::TG_W => u32::from(ctx.group.dim.0),
            csr::TG_H => u32::from(ctx.group.dim.1),
            csr::TG_RANK => {
                let lx = u32::from(ctx.xy.0 - ctx.group.origin.0);
                let ly = u32::from(ctx.xy.1 - ctx.group.origin.1);
                ly * u32::from(ctx.group.dim.0) + lx
            }
            csr::TG_SIZE => u32::from(ctx.group.dim.0) * u32::from(ctx.group.dim.1),
            csr::TG_LIVE_RANK => ctx.group.live_rank,
            csr::TG_LIVE_SIZE => ctx.group.live_size,
            csr::TG_ADOPT => ctx.group.adopt,
            csr::CELL_W => u32::from(self.pgas.cell_w),
            csr::CELL_H => u32::from(self.pgas.cell_h),
            csr::CELL_ID => u32::from(self.pgas.cell_id),
            csr::NUM_CELLS => u32::from(self.pgas.num_cells),
            csr::CYCLE => self.now as u32,
            o if (csr::ARG0..csr::ARG0 + 32).contains(&o) => {
                ctx.args[((o - csr::ARG0) / 4) as usize]
            }
            _ => return None,
        })
    }

    fn spm_load(&self, idx: usize, offset: u32, width: u8, local: bool) -> Result<u32, String> {
        if offset + u32::from(width) > self.pgas.spm_bytes {
            if local {
                // The tile traps on a local overrun...
                return Err(format!("SPM load overrun at {offset:#x}"));
            }
            // ...but a remote tile's SPM service answers overruns with 0.
            return Ok(0);
        }
        Ok(read_bytes(&self.spms[idx], offset, width))
    }

    fn spm_store(
        &mut self,
        idx: usize,
        offset: u32,
        width: u8,
        data: u32,
        local: bool,
    ) -> Result<StoreEffect, String> {
        if offset + u32::from(width) > self.pgas.spm_bytes {
            if local {
                return Err(format!("SPM store overrun at {offset:#x}"));
            }
            // Remote overrun stores are dropped by the SPM service.
            return Ok(StoreEffect::Done);
        }
        write_bytes(&mut self.spms[idx], offset, width, data);
        Ok(StoreEffect::Done)
    }
}

impl<D: DramStore> Bus for FuncBus<D> {
    fn load(&mut self, addr: u32, width: u8) -> Result<u32, String> {
        match self.pgas.translate_flat(addr).map_err(|e| e.to_string())? {
            Target::LocalSpm { offset } => self.spm_load(self.cur, offset, width, true),
            Target::Csr { offset } => self
                .csr_read(offset)
                .ok_or_else(|| format!("read of unknown CSR {offset:#x}")),
            Target::RemoteSpm { tile, offset } => {
                let own = self.ctxs[self.cur].xy;
                if tile == Coord::new(own.0, own.1) {
                    // Group space naming ourselves is a local access,
                    // including its trap-on-overrun behaviour.
                    return self.spm_load(self.cur, offset, width, true);
                }
                let idx = self.tile_index(tile)?;
                self.spm_load(idx, offset, width, false)
            }
            Target::Bank { cell, addr, .. } => Ok(self.dram.read(cell, addr, width)),
        }
    }

    fn store(&mut self, addr: u32, width: u8, data: u32) -> Result<StoreEffect, String> {
        match self.pgas.translate_flat(addr).map_err(|e| e.to_string())? {
            Target::LocalSpm { offset } => self.spm_store(self.cur, offset, width, data, true),
            Target::Csr { offset } => match offset {
                csr::BARRIER => Ok(StoreEffect::Barrier),
                // Kernel-phase marker: architecturally a no-op, mirroring
                // the cycle-accurate tile.
                csr::MARK => Ok(StoreEffect::Done),
                _ => Err(format!("store to read-only CSR {offset:#x}")),
            },
            Target::RemoteSpm { tile, offset } => {
                let own = self.ctxs[self.cur].xy;
                if tile == Coord::new(own.0, own.1) {
                    return self.spm_store(self.cur, offset, width, data, true);
                }
                let idx = self.tile_index(tile)?;
                self.spm_store(idx, offset, width, data, false)
            }
            Target::Bank { cell, addr, .. } => {
                self.dram.write(cell, addr, width, data);
                Ok(StoreEffect::Done)
            }
        }
    }

    fn amo(&mut self, addr: u32, op: AmoOp, data: u32) -> Result<u32, String> {
        match self.pgas.translate_flat(addr).map_err(|e| e.to_string())? {
            Target::Bank { cell, addr, .. } => Ok(self.dram.amo(cell, addr, op, data)),
            Target::RemoteSpm { tile, offset } => {
                // The tile sends group-space AMOs over the network even to
                // itself; the SPM service applies them (flags/mailboxes).
                let idx = self.tile_index(tile)?;
                if offset + 4 > self.pgas.spm_bytes {
                    return Err(format!("SPM AMO overrun at {offset:#x}"));
                }
                let old = read_bytes(&self.spms[idx], offset, 4);
                write_bytes(&mut self.spms[idx], offset, 4, op.apply(old, data));
                Ok(old)
            }
            _ => Err(format!("AMO to non-atomic space at {addr:#x}")),
        }
    }

    fn now(&self) -> u64 {
        self.now
    }
}

/// A standalone functional copy of one launched tile: its own [`Hart`],
/// SPM image and DRAM snapshot. Running it never perturbs the machine —
/// this is what the throughput benchmark and the differential fuzzer use.
#[derive(Debug)]
pub struct IssTile {
    /// The functional hart.
    pub hart: Hart,
    /// Its PGAS bus (SPM image index 0, DRAM snapshot).
    pub bus: FuncBus<SnapshotDram>,
    /// The kernel image.
    pub program: Arc<Program>,
}

impl IssTile {
    /// Snapshots tile `xy` of Cell `cell` — which must be launched — into
    /// a functional model, copying its registers, PC, SPM and every Cell's
    /// DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the tile has no program loaded.
    pub fn from_machine(machine: &Machine, cell: u8, xy: (u8, u8)) -> IssTile {
        let c = machine.cell(cell);
        let tile = c.tile(xy.0, xy.1);
        let program = tile
            .program()
            .expect("IssTile::from_machine needs a launched tile")
            .clone();
        let ctx = TileCtx {
            xy,
            group: tile.group(),
            args: tile.args(),
        };
        let bus = FuncBus::new(
            *c.pgas(),
            vec![(ctx, tile.spm().to_vec())],
            SnapshotDram::from_machine(machine),
        );
        let mut hart = Hart::new();
        hart.regs = *tile.arch_regs();
        hart.fregs = *tile.arch_fregs();
        hart.pc = tile.pc();
        IssTile { hart, bus, program }
    }

    /// Runs to `ecall` or until `max_instrs` retire. Barrier joins retire
    /// and continue (the 1x1-group semantics — a lone tile's barrier
    /// releases immediately).
    ///
    /// # Errors
    ///
    /// Propagates architectural faults from the hart.
    pub fn run(&mut self, max_instrs: u64) -> Result<StopReason, IssFault> {
        self.hart.run(&self.program, &mut self.bus, max_instrs)
    }
}

/// Outcome of [`Machine::warmup_functional`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmupReport {
    /// Tiles fast-forwarded.
    pub tiles: usize,
    /// Total instructions executed functionally.
    pub instrs: u64,
    /// Tiles parked at their first barrier join (they re-execute the join
    /// cycle-accurately after injection).
    pub at_barrier: usize,
    /// Tiles that ran all the way to `ecall` functionally.
    pub finished: usize,
    /// Tiles stopped by the per-tile instruction budget.
    pub out_of_budget: usize,
}

struct TileSnap {
    cell: u8,
    xy: (u8, u8),
    regs: [u32; 32],
    fregs: [f32; 32],
    pc: u32,
    spm: Vec<u8>,
    ctx: TileCtx,
    program: Arc<Program>,
}

impl Machine {
    /// Fast-forwards every launched tile through its kernel init phase on
    /// the functional model, then injects the resulting architectural
    /// state back into the cycle-level tiles.
    ///
    /// Each tile executes functionally — against its real SPM image and
    /// the machine's real DRAM — until its first barrier join, `ecall`, or
    /// `max_instrs_per_tile`, whichever comes first. Tiles stopped at a
    /// barrier are injected with the PC of the join store so the barrier
    /// itself is executed cycle-accurately; a subsequent
    /// [`Machine::run`] then simulates only the post-init phases.
    ///
    /// Tiles run one after another, so the init phase up to the first
    /// barrier must be free of cross-tile data races (the usual contract
    /// for bulk-synchronous kernels; racy interleavings are undefined on
    /// the cycle-level machine too).
    ///
    /// # Errors
    ///
    /// [`SimError::Fault`] if a tile faults functionally or is not
    /// quiescent. The machine's DRAM may be partially written at that
    /// point; treat the fault as fatal to the run.
    pub fn warmup_functional(
        &mut self,
        max_instrs_per_tile: u64,
    ) -> Result<WarmupReport, SimError> {
        // Dirty cache lines would be invisible to the functional DRAM
        // accesses (and stale after injection): start clean.
        self.flush_all_caches();

        // Phase A: snapshot the launched tiles' architectural state.
        let dim = self.config().cell_dim;
        let mut pgases = Vec::new();
        let mut snaps: Vec<Vec<TileSnap>> = Vec::new();
        for c in 0..self.num_cells() as u8 {
            let cell = self.cell(c);
            pgases.push(*cell.pgas());
            let mut cell_snaps = Vec::new();
            for y in 0..dim.y {
                for x in 0..dim.x {
                    let tile = cell.tile(x, y);
                    if !tile.is_running() {
                        continue;
                    }
                    if tile.outstanding() > 0 {
                        return Err(SimError::Fault(Box::new(crate::diag::FaultInfo::host(
                            format!(
                            "warmup_functional needs quiescent tiles; ({x},{y}) has in-flight ops"
                        ),
                        ))));
                    }
                    cell_snaps.push(TileSnap {
                        cell: c,
                        xy: (x, y),
                        regs: *tile.arch_regs(),
                        fregs: *tile.arch_fregs(),
                        pc: tile.pc(),
                        spm: tile.spm().to_vec(),
                        ctx: TileCtx {
                            xy: (x, y),
                            group: tile.group(),
                            args: tile.args(),
                        },
                        program: tile
                            .program()
                            .expect("running tile without program")
                            .clone(),
                    });
                }
            }
            snaps.push(cell_snaps);
        }

        // Phase B: run functionally against the real DRAM.
        let mut report = WarmupReport::default();
        let mut results: Vec<TileSnap> = Vec::new();
        {
            let mut dram =
                BorrowedDram::new(self.cells_mut().iter_mut().map(|c| c.dram_mut()).collect());
            for (pgas, cell_snaps) in pgases.into_iter().zip(snaps) {
                if cell_snaps.is_empty() {
                    continue;
                }
                let tiles = cell_snaps.iter().map(|s| (s.ctx, s.spm.clone())).collect();
                let mut bus = FuncBus::new(pgas, tiles, &mut dram);
                for (idx, mut snap) in cell_snaps.into_iter().enumerate() {
                    bus.set_cur(idx);
                    let mut hart = Hart::new();
                    hart.regs = snap.regs;
                    hart.fregs = snap.fregs;
                    hart.pc = snap.pc;
                    let final_pc;
                    loop {
                        if hart.stats.instrs >= max_instrs_per_tile {
                            report.out_of_budget += 1;
                            final_pc = hart.pc;
                            break;
                        }
                        let pc_before = hart.pc;
                        match hart.step(&snap.program, &mut bus) {
                            Ok(hb_iss::Step::Retired) => {}
                            Ok(hb_iss::Step::Barrier) => {
                                // Park on the join store itself: the tile
                                // re-executes it and joins for real.
                                report.at_barrier += 1;
                                final_pc = pc_before;
                                break;
                            }
                            Ok(hb_iss::Step::Ecall) => {
                                // PC parks at the ecall; the tile will
                                // re-execute it and finish in one cycle.
                                report.finished += 1;
                                final_pc = hart.pc;
                                break;
                            }
                            Err(f) => {
                                return Err(SimError::Fault(Box::new(
                                    crate::diag::FaultInfo::host(format!(
                                        "functional warmup of tile ({},{}) cell {}: {f}",
                                        snap.xy.0, snap.xy.1, snap.cell
                                    )),
                                )));
                            }
                        }
                    }
                    report.tiles += 1;
                    report.instrs += hart.stats.instrs;
                    snap.regs = hart.regs;
                    snap.fregs = hart.fregs;
                    snap.pc = final_pc;
                    snap.spm.clear();
                    results.push(snap);
                }
                // Pull the (possibly cross-written) SPM images back out.
                let n = results.len();
                for (idx, snap) in results[n - bus_tiles(&bus)..].iter_mut().enumerate() {
                    snap.spm = bus.spm(idx).to_vec();
                }
            }
        }

        // Phase C: inject.
        for snap in &results {
            let tile = self.cell_mut(snap.cell).tile_mut(snap.xy.0, snap.xy.1);
            tile.restore_arch_state(&snap.regs, &snap.fregs, snap.pc, &snap.spm);
        }
        Ok(report)
    }
}

fn bus_tiles<D>(bus: &FuncBus<D>) -> usize {
    bus.ctxs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::pgas;

    fn bus_1x1() -> FuncBus<SnapshotDram> {
        let cfg = MachineConfig::baseline_16x8();
        let machine = Machine::new(cfg);
        let pg = *machine.cell(0).pgas();
        let ctx = TileCtx {
            xy: (0, 0),
            group: GroupInfo {
                origin: (0, 0),
                dim: (1, 1),
                barrier_id: 0,
                live_rank: 0,
                live_size: 1,
                adopt: crate::pgas::NO_ADOPTEE,
            },
            args: [7, 0, 0, 0, 0, 0, 0, 0],
        };
        FuncBus::new(
            pg,
            vec![(ctx, vec![0; pg.spm_bytes as usize])],
            SnapshotDram::from_machine(&machine),
        )
    }

    #[test]
    fn spm_and_dram_round_trip() {
        let mut bus = bus_1x1();
        bus.store(pgas::local_spm(16), 4, 0xabcd_0123).unwrap();
        assert_eq!(bus.load(pgas::local_spm(16), 4).unwrap(), 0xabcd_0123);
        bus.store(pgas::local_dram(64), 4, 99).unwrap();
        assert_eq!(bus.load(pgas::local_dram(64), 4).unwrap(), 99);
        assert_eq!(bus.amo(pgas::local_dram(64), AmoOp::Add, 1).unwrap(), 99);
        assert_eq!(bus.load(pgas::local_dram(64), 4).unwrap(), 100);
    }

    #[test]
    fn csr_reads_and_barrier_store() {
        let mut bus = bus_1x1();
        bus.set_now(1234);
        assert_eq!(bus.load(csr::ARG0, 4).unwrap(), 7);
        assert_eq!(bus.load(csr::CYCLE, 4).unwrap(), 1234);
        assert_eq!(bus.load(csr::TG_SIZE, 4).unwrap(), 1);
        assert_eq!(bus.store(csr::BARRIER, 4, 1).unwrap(), StoreEffect::Barrier);
        assert!(bus.store(csr::TILE_X, 4, 1).is_err(), "CSRs are read-only");
    }

    #[test]
    fn traps_match_tile_messages() {
        let mut bus = bus_1x1();
        let spm_bytes = 4096;
        let err = bus.load(pgas::local_spm(spm_bytes - 2), 4).unwrap_err();
        assert!(err.starts_with("SPM load overrun"), "{err}");
        let err = bus.amo(pgas::local_spm(0), AmoOp::Add, 1).unwrap_err();
        assert!(err.starts_with("AMO to non-atomic space"), "{err}");
    }

    #[test]
    fn own_tile_group_space_redirects_to_local() {
        let mut bus = bus_1x1();
        bus.store(pgas::group_spm(0, 0, 32), 4, 77).unwrap();
        assert_eq!(bus.load(pgas::local_spm(32), 4).unwrap(), 77);
    }
}
