//! `hb-serve`: the campaign execution service.
//!
//! Fault-injection AVF campaigns and design-space ablation sweeps are
//! thousands of independent simulator runs. This crate turns them from
//! one-shot in-process loops into durable, resumable, cached campaigns:
//!
//! * [`spec`] — the job model. A [`JobSpec`] is the canonicalized
//!   (kind, kernel, seed, injection plan, [`MachineConfig`]) tuple with a
//!   stable content [`hash`](JobSpec::hash) that folds in a schema/binary
//!   revision, so results never alias across incompatible simulators.
//! * [`store`] — the content-addressed results [`Store`]: one JSON object
//!   per completed job under its hash, plus an append-only journal with
//!   truncated-tail recovery. Identical work is a cache hit forever.
//! * [`pool`] — the worker pool: bounded in-flight memory, per-job panic
//!   isolation, bounded retries with backoff, cooperative cancellation and
//!   an exact execution budget (`max_jobs`) for deterministic mid-run stops.
//! * [`exec`] — the [`SimExecutor`] that actually runs the simulator:
//!   golden references (with bit-identity and hb-iss anchoring checks),
//!   classified fault injections, and ablation benchmark points.
//! * [`campaign`] — named manifests of specs with save/load/status and
//!   phased (golden-first) execution.
//! * [`report`] — deterministic aggregation: AVF tables, sweep curves and
//!   completion counts, with no wall-clock in the artifact, so a resumed
//!   campaign reports byte-identically to an uninterrupted one.
//!
//! The `hb-serve` binary exposes this as `submit` / `run` / `status` /
//! `resume` / `report` / `gc`; `fault_campaign` and `ablation_sweeps` in
//! `hb-bench` execute through it and inherit caching and resume.

#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod exec;
pub mod json;
pub mod pool;
pub mod report;
pub mod spec;
pub mod store;

pub use campaign::{Campaign, CampaignStatus};
pub use exec::{golden_spec, size_token, SimExecutor};
pub use pool::{run_jobs, CampaignSummary, CancelToken, Executor, JobError, RunOpts};
pub use spec::{binary_rev, JobKind, JobSpec, PlanSpec, SCHEMA_REV};
pub use store::{GcStats, JobRecord, JournalEntry, Store};

#[cfg(doc)]
use hb_core::MachineConfig;
