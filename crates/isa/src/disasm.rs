//! Disassembly: `Display` implementations producing standard RISC-V syntax.

use crate::instr::*;
use std::fmt;

impl fmt::Display for BranchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchOp::Eq => "beq",
            BranchOp::Ne => "bne",
            BranchOp::Lt => "blt",
            BranchOp::Ge => "bge",
            BranchOp::Ltu => "bltu",
            BranchOp::Geu => "bgeu",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm & 0xfffff),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm & 0xfffff),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{op} {rs1}, {rs2}, {offset}"),
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let m = match width {
                    LoadWidth::B => "lb",
                    LoadWidth::H => "lh",
                    LoadWidth::W => "lw",
                    LoadWidth::Bu => "lbu",
                    LoadWidth::Hu => "lhu",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Instr::Store {
                width,
                rs1,
                rs2,
                offset,
            } => {
                let m = match width {
                    StoreWidth::B => "sb",
                    StoreWidth::H => "sh",
                    StoreWidth::W => "sw",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let m = match op {
                    OpImmOp::Addi => "addi",
                    OpImmOp::Slti => "slti",
                    OpImmOp::Sltiu => "sltiu",
                    OpImmOp::Xori => "xori",
                    OpImmOp::Ori => "ori",
                    OpImmOp::Andi => "andi",
                    OpImmOp::Slli => "slli",
                    OpImmOp::Srli => "srli",
                    OpImmOp::Srai => "srai",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let m = match op {
                    OpOp::Add => "add",
                    OpOp::Sub => "sub",
                    OpOp::Sll => "sll",
                    OpOp::Slt => "slt",
                    OpOp::Sltu => "sltu",
                    OpOp::Xor => "xor",
                    OpOp::Srl => "srl",
                    OpOp::Sra => "sra",
                    OpOp::Or => "or",
                    OpOp::And => "and",
                    OpOp::Mul => "mul",
                    OpOp::Mulh => "mulh",
                    OpOp::Mulhsu => "mulhsu",
                    OpOp::Mulhu => "mulhu",
                    OpOp::Div => "div",
                    OpOp::Divu => "divu",
                    OpOp::Rem => "rem",
                    OpOp::Remu => "remu",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Instr::Fence => f.write_str("fence"),
            Instr::Ecall => f.write_str("ecall"),
            Instr::Ebreak => f.write_str("ebreak"),
            Instr::Amo {
                op,
                rd,
                rs1,
                rs2,
                aq,
                rl,
            } => {
                let m = match op {
                    AmoOp::Swap => "amoswap.w",
                    AmoOp::Add => "amoadd.w",
                    AmoOp::Xor => "amoxor.w",
                    AmoOp::And => "amoand.w",
                    AmoOp::Or => "amoor.w",
                    AmoOp::Min => "amomin.w",
                    AmoOp::Max => "amomax.w",
                    AmoOp::Minu => "amominu.w",
                    AmoOp::Maxu => "amomaxu.w",
                };
                write!(f, "{m}{} {rd}, {rs2}, ({rs1})", aqrl(aq, rl))
            }
            Instr::LrW { rd, rs1, aq, rl } => write!(f, "lr.w{} {rd}, ({rs1})", aqrl(aq, rl)),
            Instr::ScW {
                rd,
                rs1,
                rs2,
                aq,
                rl,
            } => {
                write!(f, "sc.w{} {rd}, {rs2}, ({rs1})", aqrl(aq, rl))
            }
            Instr::Flw { rd, rs1, offset } => write!(f, "flw {rd}, {offset}({rs1})"),
            Instr::Fsw { rs1, rs2, offset } => write!(f, "fsw {rs2}, {offset}({rs1})"),
            Instr::FpOp { op, rd, rs1, rs2 } => {
                let m = match op {
                    FpOp::Add => "fadd.s",
                    FpOp::Sub => "fsub.s",
                    FpOp::Mul => "fmul.s",
                    FpOp::Div => "fdiv.s",
                    FpOp::Sqrt => return write!(f, "fsqrt.s {rd}, {rs1}"),
                    FpOp::Sgnj => "fsgnj.s",
                    FpOp::Sgnjn => "fsgnjn.s",
                    FpOp::Sgnjx => "fsgnjx.s",
                    FpOp::Min => "fmin.s",
                    FpOp::Max => "fmax.s",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Instr::Fma {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                let m = match op {
                    FmaOp::Madd => "fmadd.s",
                    FmaOp::Msub => "fmsub.s",
                    FmaOp::Nmsub => "fnmsub.s",
                    FmaOp::Nmadd => "fnmadd.s",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}, {rs3}")
            }
            Instr::FpCmp { op, rd, rs1, rs2 } => {
                let m = match op {
                    FpCmp::Eq => "feq.s",
                    FpCmp::Lt => "flt.s",
                    FpCmp::Le => "fle.s",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Instr::FcvtWS { rd, rs1 } => write!(f, "fcvt.w.s {rd}, {rs1}"),
            Instr::FcvtWuS { rd, rs1 } => write!(f, "fcvt.wu.s {rd}, {rs1}"),
            Instr::FcvtSW { rd, rs1 } => write!(f, "fcvt.s.w {rd}, {rs1}"),
            Instr::FcvtSWu { rd, rs1 } => write!(f, "fcvt.s.wu {rd}, {rs1}"),
            Instr::FmvXW { rd, rs1 } => write!(f, "fmv.x.w {rd}, {rs1}"),
            Instr::FmvWX { rd, rs1 } => write!(f, "fmv.w.x {rd}, {rs1}"),
        }
    }
}

fn aqrl(aq: bool, rl: bool) -> &'static str {
    match (aq, rl) {
        (false, false) => "",
        (true, false) => ".aq",
        (false, true) => ".rl",
        (true, true) => ".aqrl",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Fpr::*, Gpr::*};

    #[test]
    fn disasm_formats() {
        let i = Instr::Op {
            op: OpOp::Add,
            rd: A0,
            rs1: A1,
            rs2: A2,
        };
        assert_eq!(i.to_string(), "add a0, a1, a2");
        let i = Instr::Load {
            width: LoadWidth::W,
            rd: T0,
            rs1: Sp,
            offset: -4,
        };
        assert_eq!(i.to_string(), "lw t0, -4(sp)");
        let i = Instr::Fma {
            op: FmaOp::Madd,
            rd: Fa0,
            rs1: Fa1,
            rs2: Fa2,
            rs3: Fa3,
        };
        assert_eq!(i.to_string(), "fmadd.s fa0, fa1, fa2, fa3");
        let i = Instr::Amo {
            op: AmoOp::Add,
            rd: A0,
            rs1: A2,
            rs2: A1,
            aq: true,
            rl: true,
        };
        assert_eq!(i.to_string(), "amoadd.w.aqrl a0, a1, (a2)");
    }
}
