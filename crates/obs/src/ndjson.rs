//! Newline-delimited JSON exporter: one self-describing object per line
//! (`"type"` discriminates), for ad-hoc scripting (`jq`, pandas). Per-tile
//! lines embed [`hb_core::CoreStats::to_json_line`] verbatim, so the
//! schema is shared with everything else that serializes core counters.

use crate::Telemetry;
use hb_core::observe::ObsKind;
use std::fmt::Write as _;
use std::io;

/// Renders the whole store as NDJSON.
pub fn to_string(t: &Telemetry) -> String {
    let mut out = String::new();
    let (w, h) = t.dim;
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"window\":{},\"cells\":{},\"dim\":[{},{}],\
         \"net_dim\":[{},{}],\"final_cycle\":{},\"dropped_windows\":{}}}",
        t.window, t.num_cells, w, h, t.net_dim.0, t.net_dim.1, t.final_cycle, t.dropped
    );
    for s in &t.samples {
        for (ci, cw) in s.cells.iter().enumerate() {
            for y in 0..h {
                for x in 0..w {
                    let st = &cw.tiles[y as usize * w as usize + x as usize];
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"tile\",\"cell\":{ci},\"start\":{},\"end\":{},\
                         \"x\":{x},\"y\":{y},\"stats\":{}}}",
                        s.start,
                        s.end,
                        st.to_json_line()
                    );
                }
            }
            let hb = &cw.hbm;
            let _ = writeln!(
                out,
                "{{\"type\":\"hbm\",\"cell\":{ci},\"start\":{},\"end\":{},\
                 \"read_cycles\":{},\"write_cycles\":{},\"busy_cycles\":{},\
                 \"idle_cycles\":{},\"refresh_cycles\":{},\"reads\":{},\"writes\":{}}}",
                s.start,
                s.end,
                hb.read_cycles,
                hb.write_cycles,
                hb.busy_cycles,
                hb.idle_cycles,
                hb.refresh_cycles,
                hb.reads,
                hb.writes
            );
            let join = |f: &dyn Fn(&hb_noc::LinkStats) -> u64, links: &[hb_noc::LinkStats]| {
                links
                    .iter()
                    .map(|l| f(l).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = writeln!(
                out,
                "{{\"type\":\"noc\",\"cell\":{ci},\"start\":{},\"end\":{},\
                 \"req_busy\":[{}],\"req_flits\":[{}],\"resp_busy\":[{}],\"resp_flits\":[{}]}}",
                s.start,
                s.end,
                join(&|l| l.busy, &cw.req_net),
                join(&|l| l.flits, &cw.req_net),
                join(&|l| l.busy, &cw.resp_net),
                join(&|l| l.flits, &cw.resp_net),
            );
        }
    }
    for ev in &t.events {
        let (kind, value) = match ev.kind {
            ObsKind::Mark(v) => ("mark", i64::from(v)),
            ObsKind::BarrierJoin => ("barrier", -1),
            ObsKind::FenceRetire => ("fence_retire", -1),
            ObsKind::Fault => ("fault", -1),
            ObsKind::Inject(k) => ("inject", i64::from(k as u8)),
            ObsKind::Retransmit => ("retransmit", -1),
            ObsKind::Race => ("race", -1),
            ObsKind::Park(Some(k)) => ("park", k as i64),
            ObsKind::Park(None) => ("park", -1),
            ObsKind::Wake => ("wake", -1),
        };
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",\"cell\":{},\"cycle\":{},\"x\":{},\"y\":{},\
             \"kind\":\"{kind}\",\"value\":{value}}}",
            ev.cell, ev.cycle, ev.tile.0, ev.tile.1
        );
    }
    out
}

/// Writes [`to_string`] to `w`.
pub fn write<W: io::Write>(t: &Telemetry, w: &mut W) -> io::Result<()> {
    w.write_all(to_string(t).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellWindow, WindowSample};
    use hb_core::CoreStats;

    #[test]
    fn every_line_is_one_valid_json_object() {
        let t = Telemetry {
            window: 10,
            dim: (2, 1),
            net_dim: (2, 3),
            num_cells: 1,
            samples: vec![WindowSample {
                start: 0,
                end: 10,
                cells: vec![CellWindow {
                    tiles: vec![CoreStats::default(); 2],
                    req_net: vec![hb_noc::LinkStats::default(); 6],
                    resp_net: vec![hb_noc::LinkStats::default(); 6],
                    hbm: hb_mem::Hbm2Stats::default(),
                }],
            }],
            events: vec![hb_core::ObsEvent {
                cycle: 5,
                cell: 0,
                tile: (0, 0),
                kind: hb_core::ObsKind::BarrierJoin,
            }],
            final_cycle: 10,
            dropped: 0,
        };
        let doc = to_string(&t);
        let lines: Vec<&str> = doc.lines().collect();
        // meta + 2 tiles + hbm + noc + 1 event
        assert_eq!(lines.len(), 6, "{doc}");
        for line in &lines {
            crate::json::validate(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
            assert!(line.starts_with("{\"type\":\""), "{line}");
        }
        assert!(lines[0].contains("\"window\":10"));
        assert!(lines[5].contains("\"kind\":\"barrier\""));
    }
}
