//! Instrumented single-kernel run: samples cycle-windowed telemetry while
//! the kernel executes, writes a Perfetto-loadable Chrome trace plus an
//! NDJSON dump, and prints the tile-utilization and router-occupancy
//! heatmaps of Cell 0.
//!
//! ```text
//! cargo run --release -p hb-bench --bin telemetry -- \
//!     [--kernel SGEMM] [--window 1000] [--out telemetry.json]
//! ```
//!
//! Kernel names match the suite (`SGEMM`, `FFT`, `BFS`, ... — case
//! insensitive); `HB_SCALE` picks the Cell shape as in the figure
//! binaries. The run is bit-identical to an uninstrumented one.

use hb_bench::{bench_size, hb_config, run_instrumented, telemetry_window};

fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    let eq = format!("{flag}=");
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        } else if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_owned());
        }
    }
    None
}

fn main() {
    let kernel = arg_value("--kernel").unwrap_or_else(|| "SGEMM".to_owned());
    let out = arg_value("--out").unwrap_or_else(|| "telemetry.json".to_owned());
    let window = telemetry_window(1000);

    let suite = hb_kernels::suite();
    let bench = suite
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(&kernel))
        .unwrap_or_else(|| {
            let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
            hb_bench::cli::usage_fail(
                "usage: telemetry [--kernel SGEMM] [--window 1000] [--out telemetry.json]",
                format!("unknown kernel {kernel:?}; available: {}", names.join(", ")),
            )
        });

    let cfg = hb_config();
    println!(
        "telemetry run: {} on a {}x{} Cell, window {window}",
        bench.name(),
        cfg.cell_dim.x,
        cfg.cell_dim.y
    );
    if let Err(e) = run_instrumented(bench.as_ref(), &cfg, bench_size(), window, &out) {
        hb_bench::cli::fail(e);
    }
}
