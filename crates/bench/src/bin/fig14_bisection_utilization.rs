//! Figure 14: Cell-bisection stall percentage per kernel for (1) plain
//! 2-D mesh, (2) Ruche network, (3) Ruche + Load Packet Compression.

use hb_bench::{bench_cell, bench_size, header, row};
use hb_core::{CellDim, MachineConfig};

fn main() {
    // A wide Cell stresses the horizontal bisection (the paper's point).
    let base = bench_cell();
    let dim = CellDim {
        x: base.x * 2,
        y: base.y,
    };
    let size = bench_size();
    type Variant = (&'static str, Box<dyn Fn() -> MachineConfig>);
    let variants: [Variant; 3] = [
        (
            "2-D mesh",
            Box::new(move || MachineConfig {
                cell_dim: dim,
                ruche_factor: 0,
                load_packet_compression: false,
                ..MachineConfig::baseline_16x8()
            }),
        ),
        (
            "ruche",
            Box::new(move || MachineConfig {
                cell_dim: dim,
                load_packet_compression: false,
                ..MachineConfig::baseline_16x8()
            }),
        ),
        (
            "ruche+LPC",
            Box::new(move || MachineConfig {
                cell_dim: dim,
                ..MachineConfig::baseline_16x8()
            }),
        ),
    ];

    println!(
        "Figure 14 — request-network bisection behaviour per kernel ({}x{} Cell)\n\
         stall% = fraction of occupied bisection-link cycles spent blocked\n",
        dim.x, dim.y
    );
    let widths = [8usize, 12, 12, 12, 12, 12, 12, 12];
    header(
        &[
            "kernel",
            "mesh stall%",
            "ruche stall%",
            "r+lpc stall%",
            "mesh util%",
            "ruche util%",
            "r+lpc util%",
            "mesh slowdn",
        ],
        &widths,
    );

    for bench in hb_kernels::suite() {
        let mut stalls = Vec::new();
        let mut utils = Vec::new();
        let mut tputs = Vec::new();
        for (label, mk) in &variants {
            eprintln!("  running {} / {label} ...", bench.name());
            let stats = bench
                .run(&mk(), size)
                .unwrap_or_else(|e| panic!("{} / {label} failed: {e}", bench.name()));
            // Stall share of all bisection link-cycle slots (the paper's
            // "% of time the bisection links are stalled").
            let slots = (stats.cycles * stats.bisection_links as u64).max(1) as f64;
            stalls.push(stats.bisection.stalled as f64 / slots * 100.0);
            utils.push(stats.bisection_utilization() * 100.0);
            tputs.push(stats.throughput());
        }
        row(
            &[
                bench.name().to_owned(),
                format!("{:.1}", stalls[0]),
                format!("{:.1}", stalls[1]),
                format!("{:.1}", stalls[2]),
                format!("{:.1}", utils[0]),
                format!("{:.1}", utils[1]),
                format!("{:.1}", utils[2]),
                format!("{:.2}x", tputs[2] / tputs[0]),
            ],
            &widths,
        );
    }
    println!(
        "\npaper: mesh bisection links stall up to ~50% on network-heavy kernels;\n\
         Ruche links relieve the bisection for all kernels and LPC further helps\n\
         sequential-access kernels."
    );
}
