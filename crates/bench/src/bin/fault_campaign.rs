//! `fault_campaign` — seeded fault-injection campaign with AVF-style
//! outcome classification (the resilience counterpart of the figure
//! binaries).
//!
//! For each of `--n` runs the campaign expands a one-fault plan from
//! `--seed + i`, runs the kernel under injection, and classifies the
//! outcome against a zero-injection golden run of the same binary:
//!
//! - **masked**   — final DRAM identical to the golden run,
//! - **sdc**      — run completed but DRAM differs (silent corruption),
//! - **detected** — the machine raised a structured [`hb_core::FaultInfo`],
//! - **hang**     — the run timed out (the watchdog's `HangReport` says why).
//!
//! The golden run is itself cross-checked: before the campaign starts, the
//! harness verifies that a run with an *empty installed plan* is
//! bit-identical (DRAM digest, cycles, instructions) to a run that never
//! touched `hb-fault`, and — for barrier-free kernels — that the
//! cycle-level DRAM matches an `hb-iss` functional execution of the same
//! launch.
//!
//! Everything is a pure function of `--seed`, so repeated invocations and
//! `HB_THREADS=1` vs `HB_THREADS=4` produce identical tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hb-bench --bin fault_campaign -- \
//!   [--kernel sgemm|jacobi] [--seed S] [--n N] [--cell WxH] \
//!   [--disable x,y[;x,y]] [--expect masked=a,sdc=b,detected=c,hang=d] \
//!   [--verbose]
//! ```

use hb_asm::Program;
use hb_core::{pgas, CellDim, Machine, MachineConfig, SimError, SnapshotDram};
use hb_fault::{AvfTable, InjectionPlan, Outcome, PlanShape};
use hb_kernels::{Jacobi, Sgemm};
use hb_workloads::gen;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Sgemm,
    Jacobi,
}

impl Kernel {
    fn parse(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "sgemm" => Some(Kernel::Sgemm),
            "jacobi" => Some(Kernel::Jacobi),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Kernel::Sgemm => "sgemm",
            Kernel::Jacobi => "jacobi",
        }
    }

    /// Whether the kernel is barrier-free, so an `hb-iss` functional run
    /// executes it to completion and can anchor the golden memory image.
    fn functional_runs_to_completion(self) -> bool {
        matches!(self, Kernel::Sgemm)
    }
}

struct Args {
    kernel: Kernel,
    seed: u64,
    n: usize,
    cell: CellDim,
    disabled: Vec<(u8, u8)>,
    expect: Option<[u64; Outcome::COUNT]>,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fault_campaign [--kernel sgemm|jacobi] [--seed S] [--n N] \
         [--cell WxH] [--disable x,y[;x,y]] \
         [--expect masked=a,sdc=b,detected=c,hang=d] [--verbose]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        kernel: Kernel::Sgemm,
        seed: 1,
        n: 50,
        cell: CellDim { x: 4, y: 4 },
        disabled: Vec::new(),
        expect: None,
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--kernel" => {
                let v = value(&mut i);
                out.kernel = Kernel::parse(&v).unwrap_or_else(|| usage());
            }
            "--seed" => out.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--n" => out.n = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--cell" => {
                let v = value(&mut i);
                let (w, h) = v.split_once('x').unwrap_or_else(|| usage());
                out.cell = CellDim {
                    x: w.parse().unwrap_or_else(|_| usage()),
                    y: h.parse().unwrap_or_else(|_| usage()),
                };
            }
            "--disable" => {
                for part in value(&mut i).split(';') {
                    let (x, y) = part.split_once(',').unwrap_or_else(|| usage());
                    out.disabled.push((
                        x.trim().parse().unwrap_or_else(|_| usage()),
                        y.trim().parse().unwrap_or_else(|_| usage()),
                    ));
                }
            }
            "--expect" => {
                let v = value(&mut i);
                let mut want = [0u64; Outcome::COUNT];
                for part in v.split(',') {
                    let (key, n) = part.split_once('=').unwrap_or_else(|| usage());
                    let slot = Outcome::ALL
                        .iter()
                        .find(|o| o.label() == key.trim())
                        .unwrap_or_else(|| usage());
                    want[*slot as usize] = n.trim().parse().unwrap_or_else(|_| usage());
                }
                out.expect = Some(want);
            }
            "--verbose" => out.verbose = true,
            _ => usage(),
        }
        i += 1;
    }
    out
}

/// Builds the machine, allocates and fills the kernel inputs, and returns
/// the launch (program + argument words). Input generation is seeded, so
/// every run of the campaign sees identical initial DRAM.
fn prepare(kernel: Kernel, machine: &mut Machine) -> (Arc<Program>, Vec<u32>) {
    let (nx, ny) = {
        let d = machine.config().cell_dim;
        (d.x as usize, d.y as usize)
    };
    let cell = machine.cell_mut(0);
    match kernel {
        Kernel::Sgemm => {
            // 16 output blocks: every tile of a 4x4 cell owns live state.
            let (m, k, n) = (32usize, 16usize, 32usize);
            let a_host = gen::dense_matrix(m, k, 0xA);
            let b_host = gen::dense_matrix(k, n, 0xB);
            let a_dev = cell.alloc((m * k * 4) as u32, 64);
            let b_dev = cell.alloc((k * n * 4) as u32, 64);
            let c_dev = cell.alloc((m * n * 4) as u32, 64);
            cell.dram_mut().write_f32_slice(a_dev, &a_host);
            cell.dram_mut().write_f32_slice(b_dev, &b_host);
            // The SPM-blocked variant: operand blocks live in the
            // scratchpad, so SPM faults have architectural state to hit.
            (
                Arc::new(Sgemm::program_blocked()),
                vec![
                    pgas::local_dram(a_dev),
                    pgas::local_dram(b_dev),
                    pgas::local_dram(c_dev),
                    m as u32,
                    k as u32,
                    n as u32,
                ],
            )
        }
        Kernel::Jacobi => {
            let (z, steps) = (32usize, 2u32);
            let init = gen::dense_matrix(nx * ny, z, 0x1AC0B1);
            let grid = cell.alloc((nx * ny * z * 4) as u32, 64);
            cell.dram_mut().write_f32_slice(grid, &init);
            (
                Arc::new(Jacobi::program()),
                vec![pgas::local_dram(grid), z as u32, steps],
            )
        }
    }
}

/// One full simulation: fresh machine, same seeded inputs, optional
/// injection plan. Returns the run result and the flushed DRAM image.
fn run_once(
    kernel: Kernel,
    cfg: &MachineConfig,
    plan: Option<&InjectionPlan>,
    budget: u64,
) -> (Result<hb_core::RunSummary, SimError>, SnapshotDram) {
    let mut machine = Machine::new(cfg.clone());
    let (program, args) = prepare(kernel, &mut machine);
    machine.launch(0, &program, &args);
    if let Some(plan) = plan {
        machine.set_injection_plan(plan);
    }
    let result = machine.run(budget);
    machine.flush_all_caches();
    (result, SnapshotDram::from_machine(&machine))
}

/// FNV-1a digest over every Cell's DRAM image.
fn digest(snap: &SnapshotDram, cells: u8) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in 0..cells {
        for &b in snap.cell(c) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn same_memory(a: &SnapshotDram, b: &SnapshotDram, cells: u8) -> bool {
    (0..cells).all(|c| a.cell(c) == b.cell(c))
}

fn main() {
    let args = parse_args();
    let cfg = MachineConfig {
        cell_dim: args.cell,
        disabled_tiles: args.disabled.clone(),
        ..MachineConfig::baseline_16x8()
    };
    cfg.validate().expect("campaign config is consistent");
    let cells = cfg.num_cells;
    println!(
        "fault_campaign: kernel={} cell={}x{} seed={} n={} disabled={:?}",
        args.kernel.label(),
        cfg.cell_dim.x,
        cfg.cell_dim.y,
        args.seed,
        args.n,
        args.disabled,
    );

    // Golden run: never touches hb-fault.
    let (gold_res, gold_mem) = run_once(args.kernel, &cfg, None, 10_000_000);
    let gold = gold_res.expect("zero-injection golden run must complete");
    let gold_digest = digest(&gold_mem, cells);
    println!(
        "golden: cycles={} instrs={} dram-digest={gold_digest:#018x}",
        gold.cycles, gold.core.instrs
    );

    // Bit-identity: installing an *empty* plan must change nothing — the
    // zero-injection hot path is one untaken branch.
    let (empty_res, empty_mem) = run_once(
        args.kernel,
        &cfg,
        Some(&InjectionPlan::default()),
        10_000_000,
    );
    let empty = empty_res.expect("empty-plan run must complete");
    assert_eq!(
        (empty.cycles, empty.core.instrs, digest(&empty_mem, cells)),
        (gold.cycles, gold.core.instrs, gold_digest),
        "empty injection plan must be bit-identical to the uninstrumented run"
    );
    println!("zero-injection bit-identity: ok");

    // Anchor the golden image to the hb-iss functional model where the
    // kernel runs to completion functionally (no barriers).
    if args.kernel.functional_runs_to_completion() {
        let mut machine = Machine::new(cfg.clone());
        let (program, largs) = prepare(args.kernel, &mut machine);
        machine.launch(0, &program, &largs);
        machine
            .warmup_functional(100_000_000)
            .expect("functional golden run completes");
        machine.flush_all_caches();
        let func_mem = SnapshotDram::from_machine(&machine);
        assert!(
            same_memory(&gold_mem, &func_mem, cells),
            "cycle-level golden memory diverges from the hb-iss functional run"
        );
        println!("hb-iss golden anchor: ok");
    }

    // Faults are drawn over the golden run's active cycle range; the
    // injected-run budget leaves room for stall windows and retransmits
    // while still bounding frozen-tile hangs.
    let shape = PlanShape {
        cells,
        dim: (cfg.cell_dim.x, cfg.cell_dim.y),
        spm_words: (cfg.spm_bytes / 4).min(u32::from(u16::MAX)) as u16,
        icache_lines: (cfg.icache_bytes / cfg.line_bytes).min(u32::from(u16::MAX)) as u16,
        cycles: (100, (gold.cycles * 3 / 4).max(200)),
    };
    let budget = gold.cycles * 4 + 20_000;

    let mut table = AvfTable::new();
    for i in 0..args.n {
        let plan = InjectionPlan::random(args.seed.wrapping_add(i as u64), 1, &shape);
        let inj = plan.injections[0];
        let (result, mem) = run_once(args.kernel, &cfg, Some(&plan), budget);
        let outcome = match &result {
            Err(SimError::Fault(_)) => Outcome::Detected,
            Err(SimError::Timeout { .. }) => Outcome::Hang,
            Ok(_) if same_memory(&mem, &gold_mem, cells) => Outcome::Masked,
            Ok(_) => Outcome::Sdc,
        };
        table.record(inj.site.kind(), outcome);
        if args.verbose {
            let detail = match &result {
                Err(e) => format!(" [{e}]"),
                Ok(_) => String::new(),
            };
            println!(
                "run {i:>3}: cycle={:>7} site={:<11} -> {}{detail}",
                inj.cycle,
                inj.site.kind().label(),
                outcome.label(),
            );
        }
    }

    println!("\n{}", table.render());
    println!("summary: {}", table.summary_line());

    if let Some(want) = args.expect {
        let got: Vec<u64> = Outcome::ALL
            .iter()
            .map(|&o| table.outcome_total(o))
            .collect();
        if got != want {
            eprintln!(
                "expectation mismatch: wanted masked={} sdc={} detected={} hang={}",
                want[0], want[1], want[2], want[3]
            );
            std::process::exit(1);
        }
        println!("expected outcome counts: ok");
    }
}
