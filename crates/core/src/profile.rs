//! Performance debugging and visualization tools (paper §III.D).
//!
//! The open-source HammerBlade release ships "an extensive set of custom
//! performance debugging and visualization tools, which analyze where and
//! why the processors spend most of the time during the kernel execution
//! and the utilization of DRAM, cache, processors, and network routers".
//! This module is that tooling for the simulator: ASCII heatmaps of tile
//! and router utilization, per-bank cache reports, a stall "blame"
//! breakdown and a bottleneck diagnosis.
//!
//! # Examples
//!
//! ```no_run
//! use hb_core::{profile::CellProfile, Machine, MachineConfig};
//!
//! let machine = Machine::new(MachineConfig::baseline_16x8());
//! // ... launch and run a kernel ...
//! let profile = CellProfile::capture(machine.cell(0));
//! println!("{}", profile.report());
//! ```

use crate::cell::Cell;
use crate::stats::{CoreStats, StallKind};
use hb_cache::CacheStats;
use hb_mem::Hbm2Stats;
use hb_noc::Port;
use std::fmt::Write;

/// Shade glyphs from cold to hot.
const SHADES: [char; 8] = [' ', '.', ':', '-', '=', '+', '#', '@'];

fn shade(v: f64) -> char {
    let i = ((v.clamp(0.0, 1.0)) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[i]
}

/// A post-run snapshot of one Cell's hardware counters, with renderers.
#[derive(Debug, Clone)]
pub struct CellProfile {
    /// Tile array shape.
    pub dim: (u8, u8),
    /// Cycles the Cell has executed.
    pub cycles: u64,
    /// Per-tile core counters, row-major.
    pub tiles: Vec<CoreStats>,
    /// Per-bank cache counters.
    pub banks: Vec<CacheStats>,
    /// Per-tile-router horizontal link busy cycles (east + ruche-east).
    pub east_busy: Vec<u64>,
    /// HBM2 channel counters.
    pub hbm: Hbm2Stats,
}

impl CellProfile {
    /// Captures a profile from a (finished or running) Cell.
    pub fn capture(cell: &Cell) -> CellProfile {
        let cfg = cell.pgas();
        let (w, h) = (cfg.cell_w, cfg.cell_h);
        let mut tiles = Vec::with_capacity(w as usize * h as usize);
        let mut east_busy = Vec::with_capacity(w as usize * h as usize);
        for y in 0..h {
            for x in 0..w {
                tiles.push(cell.tile_stats(x, y));
                let c = cfg.tile_coord(x, y);
                let busy = cell.request_link(c, Port::East).busy
                    + cell.request_link(c, Port::RucheEast).busy;
                east_busy.push(busy);
            }
        }
        let banks = (0..cfg.banks()).map(|b| *cell.bank_stats(b)).collect();
        CellProfile {
            dim: (w, h),
            cycles: cell.cycle(),
            tiles,
            banks,
            east_busy,
            hbm: *cell.hbm_stats(),
        }
    }

    /// ASCII heatmap of per-tile core utilization (execute cycles / total).
    pub fn tile_heatmap(&self) -> String {
        self.render_grid("tile utilization (execute share)", |s: &CoreStats| {
            s.utilization()
        })
    }

    /// ASCII heatmap of the dominant stall share per tile.
    pub fn stall_heatmap(&self, kind: StallKind) -> String {
        self.render_grid(kind.label(), move |s: &CoreStats| {
            s.stall(kind) as f64 / s.total_cycles().max(1) as f64
        })
    }

    /// ASCII heatmap of eastward (mesh + Ruche) link activity per router.
    pub fn link_heatmap(&self) -> String {
        let max = self.east_busy.iter().copied().max().unwrap_or(1).max(1) as f64;
        let mut out = String::from("eastward link activity (row 0 = north)\n");
        for y in 0..self.dim.1 {
            for x in 0..self.dim.0 {
                let v = self.east_busy[y as usize * self.dim.0 as usize + x as usize];
                out.push(shade(v as f64 / max));
            }
            out.push('\n');
        }
        out
    }

    fn render_grid(&self, title: &str, f: impl Fn(&CoreStats) -> f64) -> String {
        let mut out = format!("{title} (row 0 = north)\n");
        for y in 0..self.dim.1 {
            for x in 0..self.dim.0 {
                let s = &self.tiles[y as usize * self.dim.0 as usize + x as usize];
                out.push(shade(f(s)));
            }
            out.push('\n');
        }
        out
    }

    /// Aggregated core counters.
    pub fn aggregate(&self) -> CoreStats {
        let mut agg = CoreStats::default();
        for t in &self.tiles {
            agg += *t;
        }
        agg
    }

    /// Per-bank table: accesses, miss rate, atomics.
    pub fn bank_report(&self) -> String {
        let mut out = String::from("bank  hits      misses    wv-fills  amos      miss%\n");
        for (i, b) in self.banks.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i:<5} {:<9} {:<9} {:<9} {:<9} {:.1}",
                b.hits,
                b.misses,
                b.write_validate_fills,
                b.amos,
                b.miss_rate() * 100.0
            );
        }
        out
    }

    /// Names the dominant bottleneck, in the spirit of the paper's "where
    /// and why the processors spend most of the time" tools.
    ///
    /// Shares are normalized against the aggregate cycle count and the
    /// verdict reports the winning share as a percentage. The
    /// DRAM-bandwidth check is independent of which stall category tops the
    /// table: a saturated HBM2 channel (>70% data-bus utilization) is the
    /// bottleneck even when the cores mostly show compute cycles, because
    /// adding tiles or MLP cannot help a full memory pipe.
    pub fn bottleneck(&self) -> String {
        let agg = self.aggregate();
        let total = agg.total_cycles().max(1) as f64;
        let exec = agg.int_cycles + agg.fp_cycles;
        let remote = agg.stall(StallKind::RemoteLoad) + agg.stall(StallKind::AmoDep);
        let barrier = agg.stall(StallKind::Barrier) + agg.stall(StallKind::Fence);
        let credit = agg.stall(StallKind::RemoteCredit);
        let fpu = agg.stall(StallKind::FpBusy) + agg.stall(StallKind::IntBusy);
        let hbm_busy = self.hbm.data_utilization();
        if hbm_busy > 0.7 {
            return format!(
                "DRAM-bandwidth-bound: needs more HBM2 bandwidth \
                 (data bus {:.0}% busy)",
                hbm_busy * 100.0
            );
        }
        let shares = [
            (exec as f64 / total, "compute-bound: add tiles"),
            (
                remote as f64 / total,
                "memory-latency-bound: increase MLP or cache locality",
            ),
            (
                barrier as f64 / total,
                "synchronization-bound: improve load balance",
            ),
            (
                credit as f64 / total,
                "network-injection-bound: reduce request rate or widen NoC",
            ),
            (
                fpu as f64 / total,
                "iterative-FPU-bound: pipeline fdiv/fsqrt or restructure math",
            ),
        ];
        let &(top, verdict) = shares.iter().max_by(|a, b| a.0.total_cmp(&b.0)).unwrap();
        format!("{verdict} ({:.0}% of cycles)", top * 100.0)
    }

    /// The full §III.D-style report: utilization heatmaps, cache and HBM
    /// tables, stall blame and the bottleneck verdict.
    pub fn report(&self) -> String {
        let agg = self.aggregate();
        let mut out = String::new();
        let _ = writeln!(out, "=== Cell profile after {} cycles ===\n", self.cycles);
        out.push_str(&self.tile_heatmap());
        out.push('\n');
        out.push_str(&self.link_heatmap());
        out.push('\n');
        out.push_str("stall blame (all tiles):\n");
        out.push_str(&crate::stats::utilization_report(&agg));
        out.push('\n');
        out.push_str(&self.bank_report());
        let denom = self.hbm.denominator().max(1) as f64;
        let _ = writeln!(
            out,
            "\nHBM2: read {:.1}%  write {:.1}%  busy {:.1}%  idle {:.1}%  (row hit {:.1}%)",
            self.hbm.read_cycles as f64 / denom * 100.0,
            self.hbm.write_cycles as f64 / denom * 100.0,
            self.hbm.busy_cycles as f64 / denom * 100.0,
            self.hbm.idle_cycles as f64 / denom * 100.0,
            self.hbm.row_hit_rate() * 100.0,
        );
        let _ = writeln!(out, "\nverdict: {}", self.bottleneck());
        out
    }
}

/// Convenience: hottest tile by a metric, for blame-style navigation.
pub fn hottest_tile(profile: &CellProfile, kind: StallKind) -> (u8, u8, f64) {
    let mut best = (0u8, 0u8, 0.0f64);
    for y in 0..profile.dim.1 {
        for x in 0..profile.dim.0 {
            let s = &profile.tiles[y as usize * profile.dim.0 as usize + x as usize];
            let share = s.stall(kind) as f64 / s.total_cycles().max(1) as f64;
            if share > best.2 {
                best = (x, y, share);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_profile() -> CellProfile {
        let mut busy_tile = CoreStats {
            int_cycles: 90,
            ..CoreStats::default()
        };
        busy_tile.add_stall(StallKind::RemoteLoad);
        let mut idle_tile = CoreStats {
            int_cycles: 5,
            ..CoreStats::default()
        };
        for _ in 0..95 {
            idle_tile.add_stall(StallKind::Barrier);
        }
        CellProfile {
            dim: (2, 1),
            cycles: 100,
            tiles: vec![busy_tile, idle_tile],
            banks: vec![CacheStats::default()],
            east_busy: vec![10, 90],
            hbm: Hbm2Stats::default(),
        }
    }

    #[test]
    fn heatmap_shades_by_utilization() {
        let p = fake_profile();
        let map = p.tile_heatmap();
        let grid_line = map.lines().nth(1).unwrap();
        assert_eq!(grid_line.chars().count(), 2);
        // Busy tile must render hotter than the barrier-bound tile.
        let chars: Vec<char> = grid_line.chars().collect();
        let rank = |c: char| SHADES.iter().position(|&s| s == c).unwrap();
        assert!(rank(chars[0]) > rank(chars[1]));
    }

    #[test]
    fn bottleneck_diagnoses_barrier_imbalance() {
        let p = fake_profile();
        let verdict = p.bottleneck();
        assert!(verdict.contains("synchronization"));
        // The verdict reports the winning share normalized to total cycles:
        // 95 barrier stalls out of 191 aggregate cycles -> 50%.
        assert!(verdict.contains("50% of cycles"), "verdict: {verdict}");
    }

    #[test]
    fn saturated_hbm_wins_even_when_compute_bound() {
        // A compute-bound kernel (top share is execute cycles) on a >70%
        // busy HBM2 data bus must still be diagnosed as DRAM-bound: the
        // override is independent of which stall category tops the table.
        let mut p = fake_profile();
        p.hbm = Hbm2Stats {
            read_cycles: 80,
            write_cycles: 0,
            busy_cycles: 10,
            idle_cycles: 10,
            ..Hbm2Stats::default()
        };
        let verdict = p.bottleneck();
        assert!(
            verdict.contains("DRAM-bandwidth-bound"),
            "verdict: {verdict}"
        );
        assert!(verdict.contains("80%"), "verdict: {verdict}");
    }

    #[test]
    fn hottest_tile_finds_the_barrier_bound_one() {
        let p = fake_profile();
        let (x, y, share) = hottest_tile(&p, StallKind::Barrier);
        assert_eq!((x, y), (1, 0));
        assert!(share > 0.9);
    }

    #[test]
    fn report_contains_all_sections() {
        let p = fake_profile();
        let r = p.report();
        for needle in [
            "tile utilization",
            "eastward link",
            "stall blame",
            "HBM2",
            "verdict",
        ] {
            assert!(r.contains(needle), "report missing {needle}");
        }
    }
}
