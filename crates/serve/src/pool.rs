//! The campaign worker pool: executes a manifest of jobs against the store
//! with bounded in-flight memory (one job per worker at a time; results
//! stream to disk, never accumulate in RAM), per-job panic isolation,
//! bounded retries with backoff for transient failures, and cooperative
//! cancellation.
//!
//! This is the durable sibling of `hb-bench`'s `jobs::run_ordered`: the same
//! scoped-thread claim-by-atomic-index shape, but jobs are keyed by content
//! hash, completed jobs are skipped (cache hits), and a panicking job
//! becomes a `failed` journal entry instead of poisoning the pool.

use crate::spec::JobSpec;
use crate::store::{JobRecord, Store};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// How a job execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Worth retrying (I/O hiccup, resource exhaustion).
    Transient(String),
    /// Deterministic failure; retrying cannot help.
    Permanent(String),
}

impl JobError {
    /// The failure message.
    pub fn message(&self) -> &str {
        match self {
            JobError::Transient(m) | JobError::Permanent(m) => m,
        }
    }
}

/// Something that can execute one job. The simulation executor lives in
/// [`crate::exec`]; tests inject mock executors to exercise the pool's
/// retry/panic/cancellation paths without simulating anything.
pub trait Executor: Sync {
    /// Runs `spec` to completion and returns its record (the pool fills in
    /// `hash` and `retries`). May read `store` (e.g. to fetch the campaign
    /// golden on resume).
    ///
    /// # Errors
    ///
    /// [`JobError::Transient`] failures are retried with backoff;
    /// [`JobError::Permanent`] (and panics) become `failed` journal entries.
    fn run(&self, spec: &JobSpec, store: &Store) -> Result<JobRecord, JobError>;
}

/// Pool tuning.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Worker threads.
    pub threads: usize,
    /// Retries per job after the first attempt (transient failures only).
    pub retries: u32,
    /// Base backoff sleep; attempt `k` sleeps `backoff_ms << k`.
    pub backoff_ms: u64,
    /// Stop claiming new work after this many *executed* (non-cached) jobs —
    /// the deterministic stand-in for a mid-campaign kill used by tests and
    /// the `serve-smoke` CI job. `None` = run to completion.
    pub max_jobs: Option<usize>,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            threads: 1,
            retries: 2,
            backoff_ms: 20,
            max_jobs: None,
        }
    }
}

/// Cooperative cancellation: workers finish the job in hand, then stop.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What the pool did with one manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignSummary {
    /// Jobs in the manifest.
    pub total: usize,
    /// Executed this invocation (cache misses that ran to a stored result).
    pub run: usize,
    /// Skipped because a valid result was already stored.
    pub cached: usize,
    /// Transient-failure retry attempts consumed (across all jobs).
    pub retried: usize,
    /// Jobs that ended in a terminal failure (panic or permanent error).
    pub failed: usize,
    /// Jobs not attempted (cancellation or `max_jobs` stop).
    pub skipped: usize,
    /// Wall-clock of this invocation.
    pub wall_ms: u64,
}

impl CampaignSummary {
    /// The stable one-line form the CI smoke job greps.
    pub fn line(&self) -> String {
        format!(
            "summary: total={} run={} cached={} retried={} failed={} skipped={} wall_ms={}",
            self.total,
            self.run,
            self.cached,
            self.retried,
            self.failed,
            self.skipped,
            self.wall_ms
        )
    }
}

/// Executes `specs` over `opts.threads` workers. Jobs whose hash is already
/// stored are counted as cache hits and skipped; the rest run with per-job
/// `catch_unwind` isolation and bounded retries, streaming results into
/// `store` as they complete.
pub fn run_jobs(
    specs: &[JobSpec],
    store: &Store,
    exec: &dyn Executor,
    opts: &RunOpts,
    cancel: &CancelToken,
) -> CampaignSummary {
    let started = std::time::Instant::now();
    let next = AtomicUsize::new(0);
    let executed = AtomicUsize::new(0);
    let run = AtomicUsize::new(0);
    let cached = AtomicUsize::new(0);
    let retried = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);

    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= specs.len() {
            break;
        }
        if cancel.is_cancelled() {
            skipped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let spec = &specs[i];
        let hash = spec.hash();
        if store.has(&hash) {
            cached.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // The executed-budget claim happens before running so `max_jobs`
        // is exact: exactly that many cache misses execute.
        if let Some(max) = opts.max_jobs {
            if executed.fetch_add(1, Ordering::Relaxed) >= max {
                cancel.cancel();
                skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        let mut attempts: u32 = 0;
        let outcome = loop {
            let result = catch_unwind(AssertUnwindSafe(|| exec.run(spec, store)));
            let err = match result {
                Ok(Ok(mut rec)) => {
                    rec.hash = hash.clone();
                    rec.retries = attempts;
                    break Ok(rec);
                }
                Ok(Err(JobError::Transient(_))) if attempts < opts.retries => {
                    retried.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(
                        opts.backoff_ms << attempts.min(10),
                    ));
                    attempts += 1;
                    continue;
                }
                Ok(Err(e)) => e.message().to_owned(),
                Err(payload) => format!("panic: {}", panic_message(payload.as_ref())),
            };
            break Err(err);
        };
        match outcome {
            Ok(rec) => {
                if store.put(&rec).is_ok() {
                    run.fetch_add(1, Ordering::Relaxed);
                } else {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(msg) => {
                let _ = store.record_failure(&hash, &msg, attempts);
                failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    };

    if opts.threads <= 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..opts.threads.min(specs.len().max(1)) {
                s.spawn(worker);
            }
        });
    }

    CampaignSummary {
        total: specs.len(),
        run: run.load(Ordering::Relaxed),
        cached: cached.load(Ordering::Relaxed),
        retried: retried.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        skipped: skipped.load(Ordering::Relaxed),
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobKind, PlanSpec};
    use hb_core::MachineConfig;
    use std::sync::Mutex;

    fn specs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                kind: JobKind::Fault,
                kernel: "mock".to_owned(),
                seed: i as u64,
                plan: PlanSpec::Seeded { faults: 1 },
                config: MachineConfig {
                    threads: 1,
                    ..MachineConfig::baseline_16x8()
                },
                label: format!("job {i}"),
            })
            .collect()
    }

    fn open_store(tag: &str) -> (Store, std::path::PathBuf) {
        let d =
            std::env::temp_dir().join(format!("hb-serve-pool-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        (Store::open(&d).unwrap(), d)
    }

    struct MockExec {
        /// seeds that panic every time
        panics: Vec<u64>,
        /// seeds that fail transiently this many times before succeeding
        flaky: Mutex<std::collections::HashMap<u64, u32>>,
    }

    impl MockExec {
        fn ok() -> MockExec {
            MockExec {
                panics: Vec::new(),
                flaky: Mutex::new(Default::default()),
            }
        }
    }

    impl Executor for MockExec {
        fn run(&self, spec: &JobSpec, _store: &Store) -> Result<JobRecord, JobError> {
            if self.panics.contains(&spec.seed) {
                panic!("job {} exploded", spec.seed);
            }
            if let Some(left) = self.flaky.lock().unwrap().get_mut(&spec.seed) {
                if *left > 0 {
                    *left -= 1;
                    return Err(JobError::Transient("flaky io".to_owned()));
                }
            }
            Ok(JobRecord {
                kind: spec.kind.canonical(),
                kernel: spec.kernel.clone(),
                seed: spec.seed,
                outcome: "masked".to_owned(),
                cycles: 100 + spec.seed,
                ..JobRecord::default()
            })
        }
    }

    #[test]
    fn runs_all_then_all_cached() {
        let (store, dir) = open_store("basic");
        let specs = specs(16);
        let opts = RunOpts {
            threads: 4,
            ..RunOpts::default()
        };
        let s = run_jobs(&specs, &store, &MockExec::ok(), &opts, &CancelToken::new());
        assert_eq!((s.total, s.run, s.cached, s.failed), (16, 16, 0, 0));
        let s2 = run_jobs(&specs, &store, &MockExec::ok(), &opts, &CancelToken::new());
        assert_eq!(
            (s2.run, s2.cached),
            (0, 16),
            "identical rerun is 100% cache hits"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        let (store, dir) = open_store("panic");
        let specs = specs(8);
        let exec = MockExec {
            panics: vec![3],
            flaky: Mutex::new(Default::default()),
        };
        let opts = RunOpts {
            threads: 4,
            ..RunOpts::default()
        };
        let s = run_jobs(&specs, &store, &exec, &opts, &CancelToken::new());
        assert_eq!((s.run, s.failed), (7, 1), "{s:?}");
        let journal = store.journal().unwrap();
        let fail: Vec<_> = journal.iter().filter(|e| e.status == "failed").collect();
        assert_eq!(fail.len(), 1);
        assert!(fail[0].detail.contains("job 3 exploded"), "{:?}", fail[0]);
        // The failed job re-runs on resume (and panics again deterministically).
        let s2 = run_jobs(&specs, &store, &exec, &opts, &CancelToken::new());
        assert_eq!((s2.run, s2.cached, s2.failed), (0, 7, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failures_retry_with_bounded_attempts() {
        let (store, dir) = open_store("retry");
        let specs = specs(4);
        let exec = MockExec {
            panics: Vec::new(),
            flaky: Mutex::new([(1u64, 2u32), (2, 99)].into()),
        };
        let opts = RunOpts {
            threads: 2,
            retries: 2,
            backoff_ms: 1,
            ..RunOpts::default()
        };
        let s = run_jobs(&specs, &store, &exec, &opts, &CancelToken::new());
        // seed 1 succeeds on its 3rd attempt (2 retries); seed 2 exhausts
        // the retry budget and fails.
        assert_eq!((s.run, s.failed), (3, 1), "{s:?}");
        assert_eq!(s.retried, 4, "2 (seed 1) + 2 (seed 2)");
        let rec = store
            .get(&specs[1].hash())
            .expect("seed 1 eventually stored");
        assert_eq!(rec.retries, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_jobs_stops_exactly_and_resume_completes() {
        let (store, dir) = open_store("maxjobs");
        let specs = specs(10);
        let opts = RunOpts {
            threads: 2,
            max_jobs: Some(4),
            ..RunOpts::default()
        };
        let s = run_jobs(&specs, &store, &MockExec::ok(), &opts, &CancelToken::new());
        assert_eq!(s.run, 4, "{s:?}");
        assert_eq!(s.run + s.cached + s.skipped, 10, "{s:?}");
        let resumed = run_jobs(
            &specs,
            &store,
            &MockExec::ok(),
            &RunOpts {
                threads: 2,
                ..RunOpts::default()
            },
            &CancelToken::new(),
        );
        assert_eq!((resumed.run, resumed.cached), (6, 4), "{resumed:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellation_skips_remaining_jobs() {
        let (store, dir) = open_store("cancel");
        let specs = specs(6);
        let cancel = CancelToken::new();
        cancel.cancel();
        let s = run_jobs(
            &specs,
            &store,
            &MockExec::ok(),
            &RunOpts::default(),
            &cancel,
        );
        assert_eq!((s.run, s.skipped), (0, 6));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
