//! Table IV: manycore landscape comparison — networks, processor type,
//! and 14/16nm-scaled compute density.

use hb_bench::{header, row};

struct Entry {
    name: &'static str,
    category: &'static str,
    networks: &'static str,
    processor: &'static str,
    cores: u32,
    fpus: u32,
    scaled_area_mm2: f64,
}

fn main() {
    println!("Table IV — manycore comparison (areas scaled to 14/16 nm)\n");
    // Literature data reproduced from the paper's Table IV.
    let entries = [
        Entry {
            name: "HammerBlade",
            category: "Cellular",
            networks: "2x 2-D Ruche",
            processor: "single-issue",
            cores: 2048,
            fpus: 2048,
            scaled_area_mm2: 77.5,
        },
        Entry {
            name: "TILE64",
            category: "Flat",
            networks: "5x 2-D mesh",
            processor: "VLIW",
            cores: 64,
            fpus: 0,
            scaled_area_mm2: 19.4,
        },
        Entry {
            name: "RAW",
            category: "Flat",
            networks: "4x 2-D mesh",
            processor: "single-issue",
            cores: 16,
            fpus: 16,
            scaled_area_mm2: 2.6,
        },
        Entry {
            name: "Celerity",
            category: "Flat",
            networks: "2x 2-D mesh",
            processor: "single-issue",
            cores: 496,
            fpus: 0,
            scaled_area_mm2: 15.3,
        },
        Entry {
            name: "Epiphany-V",
            category: "Flat",
            networks: "3x 2-D mesh",
            processor: "dual-issue",
            cores: 1024,
            fpus: 2048,
            scaled_area_mm2: 117.0,
        },
        Entry {
            name: "OpenPiton",
            category: "Flat",
            networks: "3x 2-D mesh",
            processor: "single-issue",
            cores: 25,
            fpus: 25,
            scaled_area_mm2: 11.1,
        },
        Entry {
            name: "ET-SoC-1",
            category: "Hierarchical",
            networks: "xbar + 2x CMesh",
            processor: "vector",
            cores: 1088,
            fpus: 8704,
            scaled_area_mm2: 1710.0,
        },
        Entry {
            name: "MemPool",
            category: "Hierarchical",
            networks: "xbar + butterfly",
            processor: "single-issue",
            cores: 256,
            fpus: 0,
            scaled_area_mm2: 8.6,
        },
    ];
    let hb_core_density = f64::from(entries[0].cores) / entries[0].scaled_area_mm2;
    let hb_fpu_density = f64::from(entries[0].fpus) / entries[0].scaled_area_mm2;

    let widths = [12usize, 13, 18, 13, 6, 6, 10, 10, 8];
    header(
        &[
            "design",
            "category",
            "networks",
            "processor",
            "cores",
            "FPUs",
            "cores/mm2",
            "FPUs/mm2",
            "HB adv",
        ],
        &widths,
    );
    for e in entries {
        let cd = f64::from(e.cores) / e.scaled_area_mm2;
        let fd = f64::from(e.fpus) / e.scaled_area_mm2;
        let adv = if cd > 0.0 {
            hb_core_density / cd
        } else {
            f64::INFINITY
        };
        row(
            &[
                e.name.to_owned(),
                e.category.to_owned(),
                e.networks.to_owned(),
                e.processor.to_owned(),
                e.cores.to_string(),
                e.fpus.to_string(),
                format!("{cd:.1}"),
                format!("{fd:.1}"),
                format!("{adv:.1}x"),
            ],
            &widths,
        );
    }
    println!(
        "\nHB: {hb_core_density:.1} cores/mm2, {hb_fpu_density:.1} FPUs/mm2 — up to 41.4x the core\n\
         density and 5.2x the FPU density of prior manycores (paper Table IV)."
    );
}
