//! The reconfigurable 1-bit hardware barrier network (paper Figure 4).
//!
//! Each tile has two configuration registers: the input directions it must
//! collect barrier signals from, and the output direction it forwards its
//! own signal to once it joins. Configured edges form a convergecast tree
//! whose root, upon collecting every input, broadcasts a wake signal back
//! down the same tree. Links follow the Ruche topology: a Ruche link skips
//! `ruche_factor` tiles horizontally but still costs a single cycle, which
//! is what lets a 16-wide Cell barrier converge in ~8 cycles.
//!
//! Rounds are pipelined with cumulative counters, so a tile near the root
//! may re-join the next barrier while far tiles are still being woken.

use crate::net::Coord;

/// A barrier-network link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Toward `y - 1`.
    North,
    /// Toward `y + 1`.
    South,
    /// Toward `x + 1`.
    East,
    /// Toward `x - 1`.
    West,
    /// Ruche link toward `x + ruche_factor`.
    RucheEast,
    /// Ruche link toward `x - ruche_factor`.
    RucheWest,
}

impl Dir {
    fn offset(self, rf: u8) -> (i16, i16) {
        match self {
            Dir::North => (0, -1),
            Dir::South => (0, 1),
            Dir::East => (1, 0),
            Dir::West => (-1, 0),
            Dir::RucheEast => (i16::from(rf), 0),
            Dir::RucheWest => (-i16::from(rf), 0),
        }
    }
}

/// Per-tile barrier configuration: where the tile's signal goes.
/// `None` marks the root of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierConfig {
    /// Output direction, or `None` for the root node.
    pub output: Option<Dir>,
}

#[derive(Debug, Clone, Default)]
struct NodeState {
    /// Cumulative joins by the local tile.
    joins: u64,
    /// Cumulative up-signals sent to the parent.
    sent: u64,
    /// Cumulative up-signals received from children.
    recv: u64,
    /// Cumulative wake signals delivered.
    released: u64,
    /// Cumulative releases consumed by the local tile.
    consumed: u64,
}

/// The hardware barrier network over a `width * height` tile group.
#[derive(Debug)]
pub struct BarrierNetwork {
    width: u8,
    height: u8,
    ruche_factor: u8,
    /// Parent index per node (None = root or unconfigured).
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    nodes: Vec<NodeState>,
    /// Bypassed (disabled-tile) nodes: their barrier hardware auto-joins
    /// every round so the tree converges without the tile's participation.
    bypassed: Vec<bool>,
    /// Up-signals in flight: arrive at (target) on the next tick.
    up_in_flight: Vec<usize>,
    /// Wake signals in flight.
    wake_in_flight: Vec<usize>,
    cycle: u64,
    /// Completed barrier rounds at the root.
    rounds: u64,
}

impl BarrierNetwork {
    /// Builds a barrier network from per-tile output configurations.
    ///
    /// `configs[y * width + x]` gives tile (x, y)'s register; exactly one
    /// tile must be the root.
    ///
    /// # Panics
    ///
    /// Panics if no root or multiple roots are configured, or an output
    /// direction leaves the group.
    pub fn new(width: u8, height: u8, ruche_factor: u8, configs: &[BarrierConfig]) -> Self {
        let n = width as usize * height as usize;
        assert_eq!(configs.len(), n, "one config per tile required");
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut root = None;
        for (i, cfg) in configs.iter().enumerate() {
            let (x, y) = ((i % width as usize) as i16, (i / width as usize) as i16);
            match cfg.output {
                None => {
                    assert!(root.is_none(), "multiple barrier roots configured");
                    root = Some(i);
                }
                Some(dir) => {
                    let (dx, dy) = dir.offset(ruche_factor);
                    let (tx, ty) = (x + dx, y + dy);
                    assert!(
                        tx >= 0 && tx < i16::from(width) && ty >= 0 && ty < i16::from(height),
                        "barrier output of tile ({x},{y}) leaves the group"
                    );
                    let t = ty as usize * width as usize + tx as usize;
                    parent[i] = Some(t);
                    children[t].push(i);
                }
            }
        }
        assert!(root.is_some(), "no barrier root configured");
        BarrierNetwork {
            width,
            height,
            ruche_factor,
            parent,
            children,
            nodes: vec![NodeState::default(); n],
            bypassed: vec![false; n],
            up_in_flight: Vec::new(),
            wake_in_flight: Vec::new(),
            cycle: 0,
            rounds: 0,
        }
    }

    /// Builds the canonical convergecast tree for a rectangular tile group:
    /// rows converge horizontally to the root column (using Ruche hops for
    /// distances >= the Ruche factor), then the root column converges
    /// vertically to the root at the group's center.
    pub fn tree_for_group(width: u8, height: u8, ruche_factor: u8) -> Self {
        let root_x = width / 2;
        let root_y = height / 2;
        let rf = ruche_factor.max(1);
        let mut configs = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                let output = if x == root_x {
                    if y == root_y {
                        None
                    } else if y < root_y {
                        Some(Dir::South)
                    } else {
                        Some(Dir::North)
                    }
                } else if x < root_x {
                    if ruche_factor > 0 && root_x - x >= rf {
                        Some(Dir::RucheEast)
                    } else {
                        Some(Dir::East)
                    }
                } else if ruche_factor > 0 && x - root_x >= rf {
                    Some(Dir::RucheWest)
                } else {
                    Some(Dir::West)
                };
                configs.push(BarrierConfig { output });
            }
        }
        BarrierNetwork::new(width, height, ruche_factor, &configs)
    }

    fn idx(&self, at: Coord) -> usize {
        at.y as usize * self.width as usize + at.x as usize
    }

    /// The Ruche factor the directions were configured with.
    pub fn ruche_factor(&self) -> u8 {
        self.ruche_factor
    }

    /// Group width in tiles.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Group height in tiles.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Completed barrier rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Tile `at` joins the current barrier round.
    pub fn join(&mut self, at: Coord) {
        let i = self.idx(at);
        self.nodes[i].joins += 1;
    }

    /// Marks tile `at` as bypassed: its barrier node joins every round on
    /// its own, paced by the wake signals it receives, so a group with
    /// disabled tiles still converges. Used for `disabled_tiles` resilience.
    pub fn bypass(&mut self, at: Coord) {
        let i = self.idx(at);
        self.bypassed[i] = true;
    }

    /// Whether tile `at` is bypassed.
    pub fn is_bypassed(&self, at: Coord) -> bool {
        self.bypassed[self.idx(at)]
    }

    /// Whether tile `at` has an unconsumed release (the barrier it joined
    /// has completed and the wake signal arrived).
    pub fn is_released(&self, at: Coord) -> bool {
        let n = &self.nodes[self.idx(at)];
        n.released > n.consumed
    }

    /// Consumes one release at tile `at`, allowing it to join the next round.
    pub fn consume_release(&mut self, at: Coord) {
        let i = self.idx(at);
        debug_assert!(self.nodes[i].released > self.nodes[i].consumed);
        self.nodes[i].consumed += 1;
    }

    /// Advances the barrier network one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;

        // Deliver in-flight signals (sent last cycle).
        for &t in &std::mem::take(&mut self.up_in_flight) {
            self.nodes[t].recv += 1;
        }
        let wakes = std::mem::take(&mut self.wake_in_flight);
        for &t in &wakes {
            self.nodes[t].released += 1;
            // Forward the wake to this node's children next cycle.
            for &c in &self.children[t] {
                self.wake_in_flight.push(c);
            }
        }

        // Send up-signals where a node has joined and gathered its children.
        for i in 0..self.nodes.len() {
            let nchild = self.children[i].len() as u64;
            let n = &self.nodes[i];
            let round = n.sent; // next round to send is round `sent`
                                // A bypassed node joins instantly each round, paced by its own
                                // releases (like a tile that re-joins the moment it is woken),
                                // so it can never flood its parent ahead of the live tiles.
            let joined = if self.bypassed[i] {
                n.sent <= n.released
            } else {
                n.joins > round
            };
            let ready = joined && n.recv >= (round + 1) * nchild;
            if !ready {
                continue;
            }
            match self.parent[i] {
                Some(p) => {
                    self.nodes[i].sent += 1;
                    self.up_in_flight.push(p);
                }
                None => {
                    // Root fires: release itself now, wake children next
                    // cycle.
                    self.nodes[i].sent += 1;
                    self.nodes[i].released += 1;
                    self.rounds += 1;
                    for &c in &self.children[i] {
                        self.wake_in_flight.push(c);
                    }
                }
            }
        }
    }
    /// Serializes all dynamic state plus the tree shape (the tree is
    /// config-derived, but saving `parent` lets restore validate it and
    /// rebuild `children` without re-deriving group geometry).
    pub fn snap_save(&self, w: &mut hb_mem::SnapWriter) {
        w.tag(b"BARR");
        w.u8(self.width);
        w.u8(self.height);
        w.u8(self.ruche_factor);
        w.usize(self.parent.len());
        for p in &self.parent {
            if w.opt(p.is_some()) {
                w.usize(p.unwrap());
            }
        }
        for n in &self.nodes {
            w.u64(n.joins);
            w.u64(n.sent);
            w.u64(n.recv);
            w.u64(n.released);
            w.u64(n.consumed);
        }
        for &b in &self.bypassed {
            w.bool(b);
        }
        w.usize(self.up_in_flight.len());
        for &t in &self.up_in_flight {
            w.usize(t);
        }
        w.usize(self.wake_in_flight.len());
        for &t in &self.wake_in_flight {
            w.usize(t);
        }
        w.u64(self.cycle);
        w.u64(self.rounds);
    }

    /// Rebuilds a barrier network from a snapshot; `children` is derived
    /// from the decoded `parent` vector.
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] on truncation or an out-of-range index.
    pub fn snap_load(r: &mut hb_mem::SnapReader) -> Result<BarrierNetwork, hb_mem::SnapError> {
        use hb_mem::SnapError;
        r.expect_tag(b"BARR", "BarrierNetwork section")?;
        let width = r.u8()?;
        let height = r.u8()?;
        let ruche_factor = r.u8()?;
        let n = r.seq_len()?;
        if n != width as usize * height as usize {
            return Err(SnapError::Bad("BarrierNetwork shape mismatch"));
        }
        let mut parent = Vec::with_capacity(n);
        let mut children = vec![Vec::new(); n];
        for i in 0..n {
            if r.opt()? {
                let p = r.usize()?;
                if p >= n {
                    return Err(SnapError::Bad("BarrierNetwork parent out of range"));
                }
                parent.push(Some(p));
                children[p].push(i);
            } else {
                parent.push(None);
            }
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(NodeState {
                joins: r.u64()?,
                sent: r.u64()?,
                recv: r.u64()?,
                released: r.u64()?,
                consumed: r.u64()?,
            });
        }
        let mut bypassed = Vec::with_capacity(n);
        for _ in 0..n {
            bypassed.push(r.bool()?);
        }
        let in_flight = |r: &mut hb_mem::SnapReader| -> Result<Vec<usize>, SnapError> {
            let len = r.seq_len()?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                let t = r.usize()?;
                if t >= n {
                    return Err(SnapError::Bad(
                        "BarrierNetwork in-flight index out of range",
                    ));
                }
                v.push(t);
            }
            Ok(v)
        };
        let up_in_flight = in_flight(r)?;
        let wake_in_flight = in_flight(r)?;
        Ok(BarrierNetwork {
            width,
            height,
            ruche_factor,
            parent,
            children,
            nodes,
            bypassed,
            up_in_flight,
            wake_in_flight,
            cycle: r.u64()?,
            rounds: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_coords(w: u8, h: u8) -> impl Iterator<Item = Coord> {
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// Runs one barrier round where all tiles join at cycle 0; returns the
    /// cycle at which the last tile is released.
    fn barrier_latency(net: &mut BarrierNetwork, w: u8, h: u8) -> u64 {
        for c in all_coords(w, h) {
            net.join(c);
        }
        for _ in 0..10_000 {
            net.tick();
            if all_coords(w, h).all(|c| net.is_released(c)) {
                for c in all_coords(w, h) {
                    net.consume_release(c);
                }
                return net.cycle();
            }
        }
        panic!("barrier never completed");
    }

    #[test]
    fn single_tile_barrier_is_immediate() {
        let mut net = BarrierNetwork::tree_for_group(1, 1, 3);
        let lat = barrier_latency(&mut net, 1, 1);
        assert!(lat <= 2);
    }

    #[test]
    fn ruche_reaches_root_in_paper_latency() {
        // Paper Figure 4: in a 16-wide group with Ruche-3 links, the signal
        // from the remotest tile reaches the root in ~8 cycles; a full
        // 16x8-group barrier (up + wake) completes in well under the
        // software alternative (hundreds of cycles).
        let mut net = BarrierNetwork::tree_for_group(16, 8, 3);
        let lat = barrier_latency(&mut net, 16, 8);
        assert!(
            (8..=24).contains(&lat),
            "16x8 ruche barrier latency {lat} outside expected range"
        );
    }

    #[test]
    fn mesh_barrier_is_slower_than_ruche() {
        let mut mesh = BarrierNetwork::tree_for_group(16, 8, 0);
        let mut ruche = BarrierNetwork::tree_for_group(16, 8, 3);
        let lm = barrier_latency(&mut mesh, 16, 8);
        let lr = barrier_latency(&mut ruche, 16, 8);
        assert!(lr < lm, "ruche {lr} not faster than mesh {lm}");
    }

    #[test]
    fn barrier_waits_for_stragglers() {
        let mut net = BarrierNetwork::tree_for_group(4, 4, 3);
        // All but one join.
        for c in all_coords(4, 4).skip(1) {
            net.join(c);
        }
        for _ in 0..100 {
            net.tick();
        }
        assert!(
            all_coords(4, 4).all(|c| !net.is_released(c)),
            "barrier released without every tile joining"
        );
        net.join(Coord::new(0, 0));
        for _ in 0..100 {
            net.tick();
        }
        assert!(all_coords(4, 4).all(|c| net.is_released(c)));
    }

    #[test]
    fn repeated_rounds_work() {
        let mut net = BarrierNetwork::tree_for_group(8, 4, 3);
        let mut last = 0;
        for round in 1..=5 {
            let at = barrier_latency(&mut net, 8, 4);
            assert!(at > last);
            last = at;
            assert_eq!(net.rounds(), round);
        }
    }

    #[test]
    fn latency_scales_sublinearly_with_ruche() {
        // Barrier latency for a 16-wide group should be much less than the
        // 15-hop mesh distance when ruche links are available.
        let mut net = BarrierNetwork::tree_for_group(16, 1, 3);
        let lat = barrier_latency(&mut net, 16, 1);
        assert!(lat <= 10, "16x1 ruche barrier took {lat} cycles");
    }

    /// Like `barrier_latency` but only the tiles in `live` join/consume.
    fn masked_round(net: &mut BarrierNetwork, live: &[Coord]) -> u64 {
        for &c in live {
            net.join(c);
        }
        for _ in 0..10_000 {
            net.tick();
            if live.iter().all(|&c| net.is_released(c)) {
                for &c in live {
                    net.consume_release(c);
                }
                return net.cycle();
            }
        }
        panic!("masked barrier never completed");
    }

    #[test]
    fn bypassed_tiles_do_not_block_the_barrier() {
        let mut net = BarrierNetwork::tree_for_group(4, 4, 3);
        let dead = [Coord::new(0, 0), Coord::new(2, 1)];
        for d in dead {
            net.bypass(d);
            assert!(net.is_bypassed(d));
        }
        let live: Vec<Coord> = all_coords(4, 4).filter(|c| !dead.contains(c)).collect();
        // Without the bypass these rounds would hang (see
        // barrier_waits_for_stragglers); with it they complete repeatedly.
        let mut last = 0;
        for round in 1..=4 {
            let at = masked_round(&mut net, &live);
            assert!(at > last, "round {round} did not advance");
            last = at;
            assert_eq!(net.rounds(), round);
        }
    }

    #[test]
    fn bypassing_the_root_still_converges() {
        let mut net = BarrierNetwork::tree_for_group(4, 4, 3);
        let root = Coord::new(2, 2);
        net.bypass(root);
        let live: Vec<Coord> = all_coords(4, 4).filter(|&c| c != root).collect();
        masked_round(&mut net, &live);
        masked_round(&mut net, &live);
        assert_eq!(net.rounds(), 2);
    }

    #[test]
    fn bypassed_nodes_cannot_release_a_round_early() {
        // A bypassed leaf shares a parent with live tiles; the parent must
        // not fire until the live tiles actually join.
        let mut net = BarrierNetwork::tree_for_group(4, 1, 0);
        net.bypass(Coord::new(0, 0));
        for _ in 0..200 {
            net.tick();
        }
        assert_eq!(
            net.rounds(),
            0,
            "barrier completed with no live tile joining"
        );
        let live: Vec<Coord> = (1..4).map(|x| Coord::new(x, 0)).collect();
        masked_round(&mut net, &live);
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    #[should_panic(expected = "no barrier root")]
    fn rejects_rootless_config() {
        let configs = [
            BarrierConfig {
                output: Some(Dir::East),
            },
            BarrierConfig {
                output: Some(Dir::West),
            },
        ];
        let _ = BarrierNetwork::new(2, 1, 0, &configs);
    }
}
