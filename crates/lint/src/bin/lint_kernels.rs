//! Lints every kernel in `hb-kernels` across its parameterizations.
//!
//! ```text
//! cargo run -p hb-lint --bin lint-kernels [-- --deny-warnings] [--verbose] [--json]
//! ```
//!
//! Exits non-zero if any kernel produces an `Error`-severity diagnostic
//! (or, with `--deny-warnings`, a `Warning`). `Info` findings are counted
//! in the summary and printed only with `--verbose`.
//!
//! With `--json`, output is machine-readable NDJSON: one object per
//! kernel (`{"kernel":...,"instrs":...,"errors":...,"warnings":...,
//! "info":...,"diagnostics":[{"severity":...,"rule":...,"pc":...,
//! "message":...}]}`) plus a final `{"total":...}` summary line. Exit
//! codes are unchanged.

use hb_asm::Program;
use hb_core::MachineConfig;
use hb_kernels::{
    Aes, BarnesHut, Bfs, BlackScholes, Fft, Jacobi, PageRank, Sgemm, SmithWaterman, SpGemm,
};
use hb_lint::{lint, render, LintConfig, Severity};
use std::process::ExitCode;

fn programs() -> Vec<(&'static str, Program)> {
    vec![
        ("aes", Aes::program()),
        ("bfs (top-down)", Bfs::program(false)),
        ("bfs (direction-optimizing)", Bfs::program(true)),
        ("barnes-hut", BarnesHut::program()),
        ("black-scholes", BlackScholes::program()),
        ("fft", Fft::program()),
        ("jacobi", Jacobi::program()),
        ("pagerank", PageRank::program()),
        ("sgemm", Sgemm::program()),
        ("sgemm (blocked)", Sgemm::program_blocked()),
        ("spgemm", SpGemm::program()),
        ("smith-waterman", SmithWaterman::program()),
    ]
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn severity_token(s: Severity) -> &'static str {
    match s {
        Severity::Info => "info",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    let json = args.iter().any(|a| a == "--json");
    if let Some(bad) = args.iter().find(|a| {
        !matches!(
            a.as_str(),
            "--deny-warnings" | "--verbose" | "-v" | "--json"
        )
    }) {
        eprintln!("unknown argument `{bad}`");
        eprintln!("usage: lint-kernels [--deny-warnings] [--verbose] [--json]");
        return ExitCode::from(2);
    }

    let machine = MachineConfig::baseline_16x8();
    if let Err(e) = machine.validate() {
        eprintln!("machine configuration invalid: {e}");
        return ExitCode::from(2);
    }
    let config = LintConfig::for_machine(&machine);

    let mut total = [0usize; 3]; // info, warning, error
    let mut failed = false;
    for (name, program) in programs() {
        let diags = lint(&program, &config);
        let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
        let (ni, nw, ne) = (
            count(Severity::Info),
            count(Severity::Warning),
            count(Severity::Error),
        );
        total[0] += ni;
        total[1] += nw;
        total[2] += ne;
        if json {
            let items: Vec<String> = diags
                .iter()
                .map(|d| {
                    format!(
                        "{{\"severity\":\"{}\",\"rule\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
                        severity_token(d.severity),
                        d.rule.name(),
                        d.pc.map_or("null".to_owned(), |pc| pc.to_string()),
                        json_escape(&d.message)
                    )
                })
                .collect();
            println!(
                "{{\"kernel\":\"{}\",\"instrs\":{},\"errors\":{ne},\"warnings\":{nw},\
                 \"info\":{ni},\"diagnostics\":[{}]}}",
                json_escape(name),
                program.len(),
                items.join(",")
            );
        } else {
            println!(
                "{name:30} {:5} instrs   {ne} error(s), {nw} warning(s), {ni} info",
                program.len()
            );
            for d in &diags {
                let show = match d.severity {
                    Severity::Error | Severity::Warning => true,
                    Severity::Info => verbose,
                };
                if show {
                    println!("{}", render(&program, d));
                }
            }
        }
        if ne > 0 || (deny_warnings && nw > 0) {
            failed = true;
        }
    }
    if json {
        println!(
            "{{\"total\":{{\"errors\":{},\"warnings\":{},\"info\":{}}}}}",
            total[2], total[1], total[0]
        );
    } else {
        println!(
            "\ntotal: {} error(s), {} warning(s), {} info",
            total[2], total[1], total[0]
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
