//! The ISS memory interface and the default sparse paged memory.

use hb_isa::AmoOp;
use std::collections::HashMap;

/// Bytes per [`SparseMem`] page.
pub const PAGE_BYTES: u32 = 4096;

/// Side effect of a store as seen by the execution driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreEffect {
    /// Plain data store, nothing to coordinate.
    Done,
    /// The store was a barrier join (HammerBlade joins by storing to the
    /// BARRIER CSR). The hart retires the store; the driver decides when
    /// the barrier releases (immediately for a 1x1 group, rendezvous for
    /// multi-hart functional execution).
    Barrier,
}

/// Memory system plugged under a [`Hart`](crate::Hart).
///
/// Implementations define the address space: the default [`SparseMem`] is a
/// flat 32-bit space; `hb-core` provides a PGAS bus with tile semantics
/// (SPM bounds-checks, CSR reads, group-SPM redirection, DRAM). `width` is
/// 1, 2 or 4; addresses are byte addresses. Loads return the raw (not yet
/// sign-extended) `width` bytes, little-endian, in the low bits — the hart
/// applies sign extension. Errors become [`IssFault`](crate::IssFault)s.
pub trait Bus {
    /// Loads `width` bytes at `addr`.
    fn load(&mut self, addr: u32, width: u8) -> Result<u32, String>;
    /// Stores the low `width` bytes of `data` at `addr`.
    fn store(&mut self, addr: u32, width: u8, data: u32) -> Result<StoreEffect, String>;
    /// Atomically applies `op` to the word at `addr`, returning the old
    /// value.
    fn amo(&mut self, addr: u32, op: AmoOp, data: u32) -> Result<u32, String>;
    /// Value of the CYCLE CSR, when the bus models one (the co-simulation
    /// bus forwards the cycle-level tile's clock so CSR reads match).
    fn now(&self) -> u64 {
        0
    }
}

/// Sparse paged byte memory over the full 32-bit space.
///
/// Reads of untouched pages return zero without allocating; writes allocate
/// 4 KiB pages on demand. Accesses may not straddle a page boundary —
/// aligned 1/2/4-byte accesses never do.
#[derive(Debug, Clone, Default)]
pub struct SparseMem {
    pages: HashMap<u32, Box<[u8; PAGE_BYTES as usize]>>,
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// Drops every page (memory reads as zero again).
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    /// Number of resident 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `width` bytes at `addr` (little-endian, low bits).
    pub fn read(&self, addr: u32, width: u8) -> u32 {
        let (page, off) = (addr / PAGE_BYTES, (addr % PAGE_BYTES) as usize);
        let Some(p) = self.pages.get(&page) else {
            return 0;
        };
        let mut v = 0u32;
        for i in (0..width as usize).rev() {
            v = (v << 8) | u32::from(p[off + i]);
        }
        v
    }

    /// Writes the low `width` bytes of `value` at `addr`.
    pub fn write(&mut self, addr: u32, width: u8, value: u32) {
        let (page, off) = (addr / PAGE_BYTES, (addr % PAGE_BYTES) as usize);
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_BYTES as usize]));
        for i in 0..width as usize {
            p[off + i] = (value >> (8 * i)) as u8;
        }
    }

    /// Reads a little-endian word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.read(addr, 4)
    }

    /// Writes a little-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write(addr, 4, value);
    }

    /// Copies `data` into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            self.write(addr + i as u32, 1, u32::from(b));
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read(addr + i as u32, 1) as u8)
            .collect()
    }
}

impl Bus for SparseMem {
    fn load(&mut self, addr: u32, width: u8) -> Result<u32, String> {
        Ok(self.read(addr, width))
    }

    fn store(&mut self, addr: u32, width: u8, data: u32) -> Result<StoreEffect, String> {
        self.write(addr, width, data);
        Ok(StoreEffect::Done)
    }

    fn amo(&mut self, addr: u32, op: AmoOp, data: u32) -> Result<u32, String> {
        let old = self.read(addr, 4);
        self.write(addr, 4, op.apply(old, data));
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_round_trip() {
        let mut m = SparseMem::new();
        assert_eq!(m.read_u32(0xdead_b000), 0);
        assert_eq!(m.resident_pages(), 0, "reads must not allocate");
        m.write_u32(0xdead_b000, 0x1234_5678);
        assert_eq!(m.read_u32(0xdead_b000), 0x1234_5678);
        assert_eq!(m.read(0xdead_b000, 1), 0x78, "little-endian");
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn pages_are_independent() {
        let mut m = SparseMem::new();
        m.write_u32(0, 1);
        m.write_u32(PAGE_BYTES, 2);
        m.write_u32(u32::MAX - 3, 3);
        assert_eq!(m.read_u32(0), 1);
        assert_eq!(m.read_u32(PAGE_BYTES), 2);
        assert_eq!(m.read_u32(u32::MAX - 3), 3);
        assert_eq!(m.resident_pages(), 3);
        m.clear();
        assert_eq!(m.read_u32(0), 0);
    }

    #[test]
    fn amo_returns_old_value() {
        let mut m = SparseMem::new();
        m.write_u32(64, 10);
        assert_eq!(m.amo(64, AmoOp::Add, 5).unwrap(), 10);
        assert_eq!(m.read_u32(64), 15);
        assert_eq!(m.amo(64, AmoOp::Swap, 99).unwrap(), 15);
        assert_eq!(m.read_u32(64), 99);
    }
}
