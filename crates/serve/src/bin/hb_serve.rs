//! `hb-serve` — the campaign execution service CLI.
//!
//! A campaign lives in a directory: `manifest.txt` (the jobs), `store/`
//! (content-addressed results + journal) and `report.txt` (deterministic
//! aggregate). Results are keyed by a content hash of the job spec (kernel,
//! config, seed, plan, schema/binary revision), so re-running finished work
//! is a cache hit and a killed campaign resumes by re-running only the
//! missing jobs.
//!
//! ```text
//! hb-serve run    --kernel sgemm --faults 200 --seed 7      # submit + execute + report
//! hb-serve run    ... --max-jobs 100                        # stop after 100 executions
//! hb-serve profile --kernels SGEMM,BFS,Jacobi --size small  # per-kernel hot-block tables
//! hb-serve resume --dir hb-serve-data                       # finish a killed campaign
//! hb-serve status --dir hb-serve-data                       # done/missing counts
//! hb-serve report --dir hb-serve-data                       # rebuild report.txt
//! hb-serve gc     --dir hb-serve-data                       # drop unreferenced objects
//! ```

use hb_core::{CellDim, MachineConfig};
use hb_serve::cli;
use hb_serve::{report, Campaign, CancelToken, RunOpts, SimExecutor};
use std::path::PathBuf;

const USAGE: &str = "usage: hb-serve <command> [options]

commands:
  submit   write the campaign manifest without running it
  run      submit (if needed) + execute + write report.txt
  profile  run hot-block profiling jobs over suite kernels
  resume   re-run only the jobs missing from the store
  status   print done/missing counts for the manifest
  report   rebuild and print the deterministic report
  gc       delete store objects the manifest does not reference

options:
  --dir D          campaign directory            [hb-serve-data]
  --kernel K       sgemm | jacobi                [sgemm]
  --faults N       seeded single-fault jobs      [50]
  --seed S         base seed (job i uses S+i)    [1]
  --cell WxH       tile grid per cell            [4x4]
  --disable x,y[;x,y]  disabled tiles            []
  --threads T      worker threads                [HB_THREADS or 1]
  --max-jobs N     stop after N executed jobs (deterministic mid-run stop)
  --retries R      retries per transient failure [2]
  --ckpt-every N   checkpoint fault runs every N cycles into the store,
                   so a killed worker resumes mid-job (0 = off)  [0]
  --crash-after-ckpts N  testing: exit(3) after N checkpoints (the
                   ckpt-smoke CI job's deterministic mid-run kill)
  --out FILE       also write the report here

kernel names: sgemm | jacobi, optionally warm:<kernel> to restore every
fault run from one shared post-warmup checkpoint

profile options:
  --kernels K,K    suite kernels to profile      [SGEMM,BFS,Jacobi]
  --size S         tiny | small | large          [small]";

struct Opts {
    dir: PathBuf,
    kernel: String,
    faults: usize,
    seed: u64,
    cell: CellDim,
    disabled: Vec<(u8, u8)>,
    threads: usize,
    max_jobs: Option<usize>,
    retries: u32,
    ckpt_every: u64,
    crash_after_ckpts: Option<u64>,
    out: Option<PathBuf>,
    kernels: Vec<String>,
    size: String,
}

fn parse_opts(argv: &[String]) -> Opts {
    let mut opts = Opts {
        dir: PathBuf::from("hb-serve-data"),
        kernel: "sgemm".to_owned(),
        faults: 50,
        seed: 1,
        cell: CellDim { x: 4, y: 4 },
        disabled: Vec::new(),
        threads: hb_core::threads_from_env(),
        max_jobs: None,
        retries: 2,
        ckpt_every: 0,
        crash_after_ckpts: None,
        out: None,
        kernels: vec!["SGEMM".to_owned(), "BFS".to_owned(), "Jacobi".to_owned()],
        size: "small".to_owned(),
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--dir" => opts.dir = PathBuf::from(cli::flag_value(argv, &mut i, USAGE)),
            "--kernel" => opts.kernel = cli::flag_value(argv, &mut i, USAGE).to_ascii_lowercase(),
            "--faults" => {
                opts.faults = cli::parse_value(&flag, &cli::flag_value(argv, &mut i, USAGE), USAGE)
            }
            "--seed" => {
                opts.seed = cli::parse_value(&flag, &cli::flag_value(argv, &mut i, USAGE), USAGE)
            }
            "--cell" => opts.cell = cli::parse_cell(&cli::flag_value(argv, &mut i, USAGE), USAGE),
            "--disable" => {
                opts.disabled = cli::parse_disabled(&cli::flag_value(argv, &mut i, USAGE), USAGE)
            }
            "--threads" => {
                opts.threads =
                    cli::parse_value::<usize>(&flag, &cli::flag_value(argv, &mut i, USAGE), USAGE)
                        .max(1)
            }
            "--max-jobs" => {
                opts.max_jobs = Some(cli::parse_value(
                    &flag,
                    &cli::flag_value(argv, &mut i, USAGE),
                    USAGE,
                ))
            }
            "--retries" => {
                opts.retries = cli::parse_value(&flag, &cli::flag_value(argv, &mut i, USAGE), USAGE)
            }
            "--ckpt-every" => {
                opts.ckpt_every =
                    cli::parse_value(&flag, &cli::flag_value(argv, &mut i, USAGE), USAGE)
            }
            "--crash-after-ckpts" => {
                opts.crash_after_ckpts = Some(cli::parse_value(
                    &flag,
                    &cli::flag_value(argv, &mut i, USAGE),
                    USAGE,
                ))
            }
            "--out" => opts.out = Some(PathBuf::from(cli::flag_value(argv, &mut i, USAGE))),
            "--kernels" => {
                opts.kernels = cli::flag_value(argv, &mut i, USAGE)
                    .split(',')
                    .filter(|k| !k.is_empty())
                    .map(str::to_owned)
                    .collect()
            }
            "--size" => opts.size = cli::flag_value(argv, &mut i, USAGE).to_ascii_lowercase(),
            other => cli::usage_fail(USAGE, format!("unknown option {other:?}")),
        }
        i += 1;
    }
    opts
}

fn campaign_config(opts: &Opts) -> MachineConfig {
    let cfg = MachineConfig {
        cell_dim: opts.cell,
        disabled_tiles: opts.disabled.clone(),
        threads: 1,
        ..MachineConfig::baseline_16x8()
    };
    if let Err(e) = cfg.validate() {
        cli::fail(format!("invalid machine configuration: {e}"));
    }
    cfg
}

/// Builds the campaign `submit`/`run` describe; refuses to silently reuse a
/// directory whose manifest is a *different* campaign.
fn submit_campaign(opts: &Opts) -> Campaign {
    let cfg = campaign_config(opts);
    let name = format!(
        "{} cell={}x{} seed={} faults={}",
        opts.kernel, opts.cell.x, opts.cell.y, opts.seed, opts.faults
    );
    let campaign = Campaign::fault(name, &opts.kernel, &cfg, opts.seed, opts.faults);
    persist_campaign(campaign, opts)
}

/// Builds the hot-block profiling campaign `profile` describes.
fn submit_profile_campaign(opts: &Opts) -> Campaign {
    let cfg = campaign_config(opts);
    let kernels: Vec<&str> = opts.kernels.iter().map(String::as_str).collect();
    if kernels.is_empty() {
        cli::usage_fail(USAGE, "--kernels names no kernels");
    }
    let name = format!(
        "profile {} cell={}x{} size={}",
        kernels.join(","),
        opts.cell.x,
        opts.cell.y,
        opts.size
    );
    let campaign = Campaign::profile(name, &kernels, &cfg, &opts.size);
    persist_campaign(campaign, opts)
}

/// Saves `campaign` into `opts.dir`, unless the directory already holds the
/// same campaign (no-op) or a different one (error).
fn persist_campaign(campaign: Campaign, opts: &Opts) -> Campaign {
    if opts.dir.join("manifest.txt").exists() {
        match Campaign::load(&opts.dir) {
            Ok(existing) if existing == campaign => return campaign,
            Ok(existing) => cli::fail(format!(
                "{} already holds campaign {:?}; pick another --dir or resume it",
                opts.dir.display(),
                existing.name
            )),
            Err(e) => cli::fail(format!("existing manifest is unreadable: {e}")),
        }
    }
    if let Err(e) = campaign.save(&opts.dir) {
        cli::fail(format!("cannot write manifest: {e}"));
    }
    campaign
}

fn execute(campaign: &Campaign, opts: &Opts) -> ! {
    let store = Campaign::open_store(&opts.dir)
        .unwrap_or_else(|e| cli::fail(format!("cannot open store: {e}")));
    let mut exec = SimExecutor::new(opts.threads).with_ckpt_every(opts.ckpt_every);
    if let Some(n) = opts.crash_after_ckpts {
        exec = exec.with_crash_after_ckpts(n);
    }
    let run_opts = RunOpts {
        threads: opts.threads,
        retries: opts.retries,
        max_jobs: opts.max_jobs,
        ..RunOpts::default()
    };
    let summary = campaign.run(&store, &exec, &run_opts, &CancelToken::new());
    println!("{}", summary.line());
    println!("{}", campaign.status(&store).line());
    let report_path = opts.dir.join("report.txt");
    let text = report::write(campaign, &store, &report_path)
        .unwrap_or_else(|e| cli::fail(format!("cannot write {}: {e}", report_path.display())));
    if let Some(out) = &opts.out {
        use std::io::Write;
        let mut f = cli::create_out(out);
        f.write_all(text.as_bytes())
            .unwrap_or_else(|e| cli::fail(format!("cannot write {}: {e}", out.display())));
    }
    println!("report: {}", report_path.display());
    if summary.failed > 0 {
        cli::fail(format!(
            "{} job(s) failed; see the store journal",
            summary.failed
        ));
    }
    std::process::exit(0);
}

fn load_campaign(opts: &Opts) -> Campaign {
    Campaign::load(&opts.dir).unwrap_or_else(|e| cli::fail(e))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        cli::usage_fail(USAGE, "missing command");
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => println!("{USAGE}"),
        "submit" => {
            let opts = parse_opts(rest);
            let campaign = submit_campaign(&opts);
            println!(
                "submitted: {:?} ({} jobs) -> {}",
                campaign.name,
                campaign.specs.len(),
                opts.dir.display()
            );
        }
        "run" => {
            let opts = parse_opts(rest);
            let campaign = submit_campaign(&opts);
            execute(&campaign, &opts);
        }
        "profile" => {
            let opts = parse_opts(rest);
            let campaign = submit_profile_campaign(&opts);
            execute(&campaign, &opts);
        }
        "resume" => {
            let opts = parse_opts(rest);
            let campaign = load_campaign(&opts);
            execute(&campaign, &opts);
        }
        "status" => {
            let opts = parse_opts(rest);
            let campaign = load_campaign(&opts);
            let store = Campaign::open_store(&opts.dir)
                .unwrap_or_else(|e| cli::fail(format!("cannot open store: {e}")));
            println!("campaign: {:?}", campaign.name);
            println!("{}", campaign.status(&store).line());
        }
        "report" => {
            let opts = parse_opts(rest);
            let campaign = load_campaign(&opts);
            let store = Campaign::open_store(&opts.dir)
                .unwrap_or_else(|e| cli::fail(format!("cannot open store: {e}")));
            let path = opts
                .out
                .clone()
                .unwrap_or_else(|| opts.dir.join("report.txt"));
            let text = report::write(&campaign, &store, &path)
                .unwrap_or_else(|e| cli::fail(format!("cannot write {}: {e}", path.display())));
            print!("{text}");
        }
        "gc" => {
            let opts = parse_opts(rest);
            let campaign = load_campaign(&opts);
            let store = Campaign::open_store(&opts.dir)
                .unwrap_or_else(|e| cli::fail(format!("cannot open store: {e}")));
            let keep: std::collections::HashSet<String> = campaign.hashes().into_iter().collect();
            let stats = store.gc(&keep).unwrap_or_else(|e| cli::fail(e));
            println!(
                "gc: kept={} deleted={} bytes={}",
                stats.kept, stats.deleted, stats.bytes
            );
        }
        other => cli::usage_fail(USAGE, format!("unknown command {other:?}")),
    }
}
