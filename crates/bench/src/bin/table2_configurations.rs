//! Table II: HB machine configurations and derived geometry.

use hb_bench::{header, row};
use hb_core::MachineConfig;

fn main() {
    println!("Table II — HB machine configurations\n");
    // Paper-reported implementation areas (14/16 nm) per configuration.
    let configs: [(&str, MachineConfig, f64, &str); 4] = [
        ("16x8", MachineConfig::baseline_16x8(), 311.0, "8x8"),
        ("16x16", MachineConfig::cell_16x16(), 539.0, "8x8"),
        ("32x8", MachineConfig::cell_32x8(), 620.0, "8x8"),
        ("2x16x8", MachineConfig::two_cells_16x8(), 620.0, "16x8"),
    ];
    let widths = [9usize, 10, 10, 11, 13, 14, 12, 10];
    header(
        &[
            "config",
            "area mm2",
            "cells",
            "cores/cell",
            "banks/cell",
            "cache/cell KB",
            "total cores",
            "cores/mm2",
        ],
        &widths,
    );
    for (name, cfg, area, cell_array) in configs {
        let cells: u32 = {
            let parts: Vec<u32> = cell_array.split('x').map(|s| s.parse().unwrap()).collect();
            parts[0] * parts[1]
        };
        let cores_per_cell = cfg.cell_dim.tiles() as u32;
        let total = cores_per_cell * cells;
        row(
            &[
                name.to_owned(),
                format!("{area:.0}"),
                cell_array.to_owned(),
                cores_per_cell.to_string(),
                cfg.banks_per_cell().to_string(),
                (cfg.cell_cache_bytes() / 1024).to_string(),
                total.to_string(),
                format!("{:.1}", f64::from(total) / area),
            ],
            &widths,
        );
    }
    let base = MachineConfig::baseline_16x8();
    println!(
        "\nshared parameters: {} KB SPM + {} KB icache per tile, {} sets x {} ways\n\
         x {} B lines per bank, core {} MHz / HBM2 {} MHz, {}-entry scoreboard,\n\
         Ruche factor {}.",
        base.spm_bytes / 1024,
        base.icache_bytes / 1024,
        base.cache_sets,
        base.cache_ways,
        base.line_bytes,
        base.core_freq_mhz,
        base.mem_freq_mhz,
        base.max_outstanding,
        base.ruche_factor,
    );
    println!("paper cores/mm2: 26.4 (16x8), 30.3 (16x16), 26.4 (32x8), 26.4 (2x16x8).");
}
