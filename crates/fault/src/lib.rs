//! Deterministic fault injection for HammerBlade-RS.
//!
//! This crate holds the *plan* side of the resilience subsystem: which
//! microarchitectural sites get hit, on which cycle, drawn from a seeded
//! [`hb_rng::Rng`] stream or listed explicitly. The *mechanism* side — how a
//! flipped SPM word or a corrupted flit actually propagates — lives in the
//! structures themselves (`hb-core`, `hb-noc`, `hb-mem`); `hb-core`'s
//! `Machine::set_injection_plan` partitions a plan into per-domain schedules
//! at install time so the zero-injection hot path stays a single untaken
//! branch.
//!
//! The same crate also defines the outcome taxonomy used by the
//! `fault_campaign` harness: every injected fault is classified as
//! [`Outcome::Masked`], [`Outcome::Sdc`], [`Outcome::Detected`] or
//! [`Outcome::Hang`], and [`AvfTable`] aggregates counts per site kind into
//! an AVF-style report.
//!
//! Determinism argument: a plan is a pure function of its seed and shape, and
//! every injection is applied in a *sequential* phase of the BSP engine
//! (never inside the parallel tile phase), so a campaign run is bit-identical
//! across repeats and across `HB_THREADS` settings.

use hb_rng::Rng;

/// Marker for a permanent tile freeze (never thaws).
pub const FREEZE_FOREVER: u64 = u64::MAX;

/// A microarchitectural fault site, fully specifying where a single
/// transient fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Flip `bit` of integer register `reg` of tile `(x, y)` in `cell`.
    /// Flips of `x0` are architecturally masked (the register reads as
    /// zero regardless) and count toward the masked bucket.
    RegFile {
        /// Cell index.
        cell: u8,
        /// Tile column.
        x: u8,
        /// Tile row.
        y: u8,
        /// Register index (0..32).
        reg: u8,
        /// Bit position (0..32).
        bit: u8,
    },
    /// Flip `bit` of the scratchpad word at byte offset `word * 4`.
    Spm {
        /// Cell index.
        cell: u8,
        /// Tile column.
        x: u8,
        /// Tile row.
        y: u8,
        /// Word index into the scratchpad (byte offset / 4).
        word: u16,
        /// Bit position (0..32).
        bit: u8,
    },
    /// A detected (parity-style) flip in instruction-cache line `line`:
    /// the line is invalidated and refetched, costing a miss but never
    /// corrupting execution.
    IcacheLine {
        /// Cell index.
        cell: u8,
        /// Tile column.
        x: u8,
        /// Tile row.
        y: u8,
        /// Line index into the cache (wrapped modulo the line count).
        line: u16,
    },
    /// Corrupt the next flit crossing output `port` of router `(x, y)` on
    /// the request (`req = true`) or response network. The link-level
    /// check detects the corruption and the sender replays the flit after
    /// a bounded retry penalty, so the fault costs latency, never data.
    NocLink {
        /// Cell index.
        cell: u8,
        /// Router column.
        x: u8,
        /// Router row (network coordinates: row 0 is the north bank strip).
        y: u8,
        /// Output port index (0..7, see `hb_noc::Port`).
        port: u8,
        /// `true` for the request network, `false` for responses.
        req: bool,
    },
    /// Stall the cell's HBM pseudo-channel for `window` memory-clock
    /// cycles (no issue; in-flight CAS still retires).
    HbmStall {
        /// Cell index.
        cell: u8,
        /// Stall window in memory-clock cycles.
        window: u16,
    },
    /// Freeze tile `(x, y)` for `cycles` core cycles
    /// ([`FREEZE_FOREVER`] = permanently).
    TileFreeze {
        /// Cell index.
        cell: u8,
        /// Tile column.
        x: u8,
        /// Tile row.
        y: u8,
        /// Freeze duration in core cycles.
        cycles: u64,
    },
}

impl Site {
    /// Stable canonical text form, `kind(field,field,...)` with fields in
    /// declaration order — the serialization campaign job hashes fold in
    /// (see `hb-serve`), so the layout is frozen: any change must bump the
    /// plan version in [`InjectionPlan::canonical_text`].
    pub fn canonical(&self) -> String {
        match *self {
            Site::RegFile {
                cell,
                x,
                y,
                reg,
                bit,
            } => {
                format!("regfile({cell},{x},{y},{reg},{bit})")
            }
            Site::Spm {
                cell,
                x,
                y,
                word,
                bit,
            } => {
                format!("spm({cell},{x},{y},{word},{bit})")
            }
            Site::IcacheLine { cell, x, y, line } => {
                format!("icache({cell},{x},{y},{line})")
            }
            Site::NocLink {
                cell,
                x,
                y,
                port,
                req,
            } => {
                format!("noc({cell},{x},{y},{port},{})", u8::from(req))
            }
            Site::HbmStall { cell, window } => format!("hbm({cell},{window})"),
            Site::TileFreeze { cell, x, y, cycles } => {
                format!("freeze({cell},{x},{y},{cycles})")
            }
        }
    }

    /// Parses [`Site::canonical`] text.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed component.
    pub fn from_canonical(text: &str) -> Result<Site, String> {
        let open = text.find('(').ok_or_else(|| format!("bad site {text:?}"))?;
        let body = text[open..]
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| format!("bad site {text:?}"))?;
        let kind = &text[..open];
        let nums: Vec<&str> = body.split(',').collect();
        fn field<T: std::str::FromStr>(site: &str, v: &str) -> Result<T, String> {
            v.parse()
                .map_err(|_| format!("bad site field {v:?} in {site:?}"))
        }
        let want = |n: usize| -> Result<(), String> {
            if nums.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "site {text:?} wants {n} fields, got {}",
                    nums.len()
                ))
            }
        };
        Ok(match kind {
            "regfile" => {
                want(5)?;
                Site::RegFile {
                    cell: field(text, nums[0])?,
                    x: field(text, nums[1])?,
                    y: field(text, nums[2])?,
                    reg: field(text, nums[3])?,
                    bit: field(text, nums[4])?,
                }
            }
            "spm" => {
                want(5)?;
                Site::Spm {
                    cell: field(text, nums[0])?,
                    x: field(text, nums[1])?,
                    y: field(text, nums[2])?,
                    word: field(text, nums[3])?,
                    bit: field(text, nums[4])?,
                }
            }
            "icache" => {
                want(4)?;
                Site::IcacheLine {
                    cell: field(text, nums[0])?,
                    x: field(text, nums[1])?,
                    y: field(text, nums[2])?,
                    line: field(text, nums[3])?,
                }
            }
            "noc" => {
                want(5)?;
                Site::NocLink {
                    cell: field(text, nums[0])?,
                    x: field(text, nums[1])?,
                    y: field(text, nums[2])?,
                    port: field(text, nums[3])?,
                    req: field::<u8>(text, nums[4])? != 0,
                }
            }
            "hbm" => {
                want(2)?;
                Site::HbmStall {
                    cell: field(text, nums[0])?,
                    window: field(text, nums[1])?,
                }
            }
            "freeze" => {
                want(4)?;
                Site::TileFreeze {
                    cell: field(text, nums[0])?,
                    x: field(text, nums[1])?,
                    y: field(text, nums[2])?,
                    cycles: field(text, nums[3])?,
                }
            }
            _ => return Err(format!("unknown site kind {kind:?}")),
        })
    }

    /// The structure this site belongs to, for AVF aggregation.
    pub fn kind(&self) -> SiteKind {
        match self {
            Site::RegFile { .. } => SiteKind::RegFile,
            Site::Spm { .. } => SiteKind::Spm,
            Site::IcacheLine { .. } => SiteKind::IcacheLine,
            Site::NocLink { .. } => SiteKind::NocLink,
            Site::HbmStall { .. } => SiteKind::HbmStall,
            Site::TileFreeze { .. } => SiteKind::TileFreeze,
        }
    }
}

/// The structure class of a [`Site`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SiteKind {
    /// Integer register file.
    RegFile = 0,
    /// Scratchpad memory word.
    Spm = 1,
    /// Instruction-cache line (detected parity flip).
    IcacheLine = 2,
    /// NoC link flit (detected, retransmitted).
    NocLink = 3,
    /// HBM channel stall window.
    HbmStall = 4,
    /// Whole-tile freeze.
    TileFreeze = 5,
}

impl SiteKind {
    /// Number of kinds.
    pub const COUNT: usize = 6;

    /// Every kind, in display order.
    pub const ALL: [SiteKind; SiteKind::COUNT] = [
        SiteKind::RegFile,
        SiteKind::Spm,
        SiteKind::IcacheLine,
        SiteKind::NocLink,
        SiteKind::HbmStall,
        SiteKind::TileFreeze,
    ];

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            SiteKind::RegFile => "regfile",
            SiteKind::Spm => "spm",
            SiteKind::IcacheLine => "icache",
            SiteKind::NocLink => "noc-link",
            SiteKind::HbmStall => "hbm-stall",
            SiteKind::TileFreeze => "tile-freeze",
        }
    }
}

/// One scheduled fault: a [`Site`] hit at an absolute machine cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Machine cycle at which the fault lands.
    pub cycle: u64,
    /// Where it lands.
    pub site: Site,
}

/// The machine shape a random plan draws sites from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanShape {
    /// Number of cells.
    pub cells: u8,
    /// Tile-grid dimensions per cell (columns, rows).
    pub dim: (u8, u8),
    /// Scratchpad words per tile.
    pub spm_words: u16,
    /// Instruction-cache lines per tile.
    pub icache_lines: u16,
    /// Inclusive-exclusive cycle range faults are drawn from.
    pub cycles: (u64, u64),
}

/// A deterministic, seeded injection plan: the complete schedule of faults
/// for one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InjectionPlan {
    /// The seed the plan was expanded from (0 for explicit plans).
    pub seed: u64,
    /// Scheduled faults; sorted by cycle on construction.
    pub injections: Vec<Injection>,
}

impl InjectionPlan {
    /// A plan from an explicit `(cycle, site)` list.
    pub fn explicit(list: impl IntoIterator<Item = (u64, Site)>) -> InjectionPlan {
        let mut injections: Vec<Injection> = list
            .into_iter()
            .map(|(cycle, site)| Injection { cycle, site })
            .collect();
        injections.sort_by_key(|i| i.cycle);
        InjectionPlan {
            seed: 0,
            injections,
        }
    }

    /// Expands `n` uniformly random faults over `shape` from `seed`.
    ///
    /// The expansion consumes a fixed number of draws per fault from the
    /// `hb-rng` xoshiro256** stream, so a given `(seed, n, shape)` always
    /// yields the same plan — this is the campaign's reproducibility
    /// contract.
    pub fn random(seed: u64, n: usize, shape: &PlanShape) -> InjectionPlan {
        let mut rng = Rng::seed_from_u64(seed);
        let mut injections = Vec::with_capacity(n);
        for _ in 0..n {
            let cycle = shape.cycles.0 + rng.below(shape.cycles.1.saturating_sub(shape.cycles.0));
            injections.push(Injection {
                cycle,
                site: Self::draw_site(&mut rng, shape),
            });
        }
        injections.sort_by_key(|i| i.cycle);
        InjectionPlan { seed, injections }
    }

    fn draw_site(rng: &mut Rng, shape: &PlanShape) -> Site {
        let cell = rng.below(u64::from(shape.cells)) as u8;
        let x = rng.below(u64::from(shape.dim.0)) as u8;
        let y = rng.below(u64::from(shape.dim.1)) as u8;
        match rng.below(SiteKind::COUNT as u64) {
            0 => Site::RegFile {
                cell,
                x,
                y,
                reg: rng.below(32) as u8,
                bit: rng.below(32) as u8,
            },
            1 => Site::Spm {
                cell,
                x,
                y,
                word: rng.below(u64::from(shape.spm_words.max(1))) as u16,
                bit: rng.below(32) as u8,
            },
            2 => Site::IcacheLine {
                cell,
                x,
                y,
                line: rng.below(u64::from(shape.icache_lines.max(1))) as u16,
            },
            3 => Site::NocLink {
                cell,
                x,
                // Router rows span the tile grid plus the two bank strips.
                y: rng.below(u64::from(shape.dim.1) + 2) as u8,
                port: rng.below(7) as u8,
                req: rng.chance(0.5),
            },
            4 => Site::HbmStall {
                cell,
                window: 64 + rng.below(192) as u16,
            },
            _ => Site::TileFreeze {
                cell,
                x,
                y,
                cycles: if rng.chance(0.25) {
                    FREEZE_FOREVER
                } else {
                    256 + rng.below(4096)
                },
            },
        }
    }

    /// Stable canonical single-line serialization, versioned:
    /// `planv=1;seed=S;inj=cycle@site|cycle@site|...`. This is the form
    /// campaign job hashes fold in, so identical plans — however they were
    /// constructed — serialize identically.
    pub fn canonical_text(&self) -> String {
        let inj = self
            .injections
            .iter()
            .map(|i| format!("{}@{}", i.cycle, i.site.canonical()))
            .collect::<Vec<_>>()
            .join("|");
        format!("planv=1;seed={};inj={inj}", self.seed)
    }

    /// Parses [`InjectionPlan::canonical_text`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed component; a version
    /// other than 1 is an error.
    pub fn from_canonical_text(text: &str) -> Result<InjectionPlan, String> {
        let mut seed = None;
        let mut inj_text = None;
        let mut version = None;
        for part in text.split(';') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed plan field {part:?}"))?;
            match k {
                "planv" => {
                    version = Some(
                        v.parse::<u32>()
                            .map_err(|_| format!("bad plan version {v:?}"))?,
                    );
                }
                "seed" => {
                    seed = Some(
                        v.parse::<u64>()
                            .map_err(|_| format!("bad plan seed {v:?}"))?,
                    );
                }
                "inj" => inj_text = Some(v),
                _ => return Err(format!("unknown plan field {k:?}")),
            }
        }
        match version {
            Some(1) => {}
            Some(v) => return Err(format!("unsupported plan version {v}")),
            None => return Err("missing plan version".to_owned()),
        }
        let seed = seed.ok_or("missing plan seed")?;
        let inj_text = inj_text.ok_or("missing plan injections")?;
        let mut injections = Vec::new();
        if !inj_text.is_empty() {
            for item in inj_text.split('|') {
                let (cycle, site) = item
                    .split_once('@')
                    .ok_or_else(|| format!("malformed injection {item:?}"))?;
                injections.push(Injection {
                    cycle: cycle
                        .parse()
                        .map_err(|_| format!("bad injection cycle {cycle:?}"))?,
                    site: Site::from_canonical(site)?,
                });
            }
        }
        Ok(InjectionPlan { seed, injections })
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.injections.len()
    }
}

/// Campaign outcome of a single injected fault, in severity order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Outcome {
    /// Final architectural memory matched the golden run.
    Masked = 0,
    /// Final memory differed silently (silent data corruption).
    Sdc = 1,
    /// The machine raised a structured fault (trap, lint, divergence).
    Detected = 2,
    /// The run timed out; the hang watchdog classified why.
    Hang = 3,
}

impl Outcome {
    /// Number of outcomes.
    pub const COUNT: usize = 4;

    /// Every outcome, in display order.
    pub const ALL: [Outcome; Outcome::COUNT] = [
        Outcome::Masked,
        Outcome::Sdc,
        Outcome::Detected,
        Outcome::Hang,
    ];

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Detected => "detected",
            Outcome::Hang => "hang",
        }
    }
}

/// AVF-style outcome table: fault counts per (site kind, outcome).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AvfTable {
    counts: [[u64; Outcome::COUNT]; SiteKind::COUNT],
}

impl AvfTable {
    /// An empty table.
    pub fn new() -> AvfTable {
        AvfTable::default()
    }

    /// Records one classified fault.
    pub fn record(&mut self, kind: SiteKind, outcome: Outcome) {
        self.counts[kind as usize][outcome as usize] += 1;
    }

    /// Count for a (kind, outcome) pair.
    pub fn count(&self, kind: SiteKind, outcome: Outcome) -> u64 {
        self.counts[kind as usize][outcome as usize]
    }

    /// Total faults for one outcome across kinds.
    pub fn outcome_total(&self, outcome: Outcome) -> u64 {
        SiteKind::ALL.iter().map(|&k| self.count(k, outcome)).sum()
    }

    /// Total recorded faults.
    pub fn total(&self) -> u64 {
        Outcome::ALL.iter().map(|&o| self.outcome_total(o)).sum()
    }

    /// Architectural vulnerability factor for one kind: the fraction of its
    /// faults that mattered (SDC + detected + hang).
    pub fn avf(&self, kind: SiteKind) -> f64 {
        let row: u64 = Outcome::ALL.iter().map(|&o| self.count(kind, o)).sum();
        if row == 0 {
            return 0.0;
        }
        (row - self.count(kind, Outcome::Masked)) as f64 / row as f64
    }

    /// Renders the table as aligned text, one row per site kind plus a
    /// totals row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}\n",
            "site", "masked", "sdc", "detected", "hang", "total", "avf"
        ));
        for kind in SiteKind::ALL {
            let row: u64 = Outcome::ALL.iter().map(|&o| self.count(kind, o)).sum();
            if row == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6.2}%\n",
                kind.label(),
                self.count(kind, Outcome::Masked),
                self.count(kind, Outcome::Sdc),
                self.count(kind, Outcome::Detected),
                self.count(kind, Outcome::Hang),
                row,
                self.avf(kind) * 100.0,
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "total",
            self.outcome_total(Outcome::Masked),
            self.outcome_total(Outcome::Sdc),
            self.outcome_total(Outcome::Detected),
            self.outcome_total(Outcome::Hang),
            self.total(),
        ));
        out
    }

    /// One-line `masked=a sdc=b detected=c hang=d` summary, the format the
    /// CI smoke job asserts against.
    pub fn summary_line(&self) -> String {
        format!(
            "masked={} sdc={} detected={} hang={}",
            self.outcome_total(Outcome::Masked),
            self.outcome_total(Outcome::Sdc),
            self.outcome_total(Outcome::Detected),
            self.outcome_total(Outcome::Hang),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> PlanShape {
        PlanShape {
            cells: 1,
            dim: (4, 4),
            spm_words: 1024,
            icache_lines: 256,
            cycles: (100, 10_000),
        }
    }

    #[test]
    fn random_plans_are_deterministic_and_sorted() {
        let a = InjectionPlan::random(42, 100, &shape());
        let b = InjectionPlan::random(42, 100, &shape());
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.injections.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert!(a
            .injections
            .iter()
            .all(|i| (100..10_000).contains(&i.cycle)));
        let c = InjectionPlan::random(43, 100, &shape());
        assert_ne!(a, c, "different seeds must give different plans");
    }

    #[test]
    fn random_plans_draw_every_site_kind() {
        let plan = InjectionPlan::random(7, 600, &shape());
        for kind in SiteKind::ALL {
            assert!(
                plan.injections.iter().any(|i| i.site.kind() == kind),
                "600 draws never hit {}",
                kind.label()
            );
        }
    }

    #[test]
    fn sites_stay_inside_the_shape() {
        let s = shape();
        for i in &InjectionPlan::random(9, 400, &s).injections {
            match i.site {
                Site::RegFile { x, y, reg, bit, .. } => {
                    assert!(x < 4 && y < 4 && reg < 32 && bit < 32);
                }
                Site::Spm { word, bit, .. } => assert!(word < 1024 && bit < 32),
                Site::IcacheLine { line, .. } => assert!(line < 256),
                Site::NocLink { y, port, .. } => assert!(y < 6 && port < 7),
                Site::HbmStall { window, .. } => assert!((64..256).contains(&window)),
                Site::TileFreeze { cycles, .. } => {
                    assert!(cycles == FREEZE_FOREVER || (256..4352).contains(&cycles));
                }
            }
        }
    }

    #[test]
    fn explicit_plans_sort_by_cycle() {
        let site = Site::HbmStall {
            cell: 0,
            window: 10,
        };
        let plan = InjectionPlan::explicit([(50, site), (10, site), (30, site)]);
        let cycles: Vec<u64> = plan.injections.iter().map(|i| i.cycle).collect();
        assert_eq!(cycles, [10, 30, 50]);
    }

    #[test]
    fn canonical_plan_roundtrips_and_is_stable() {
        let plan = InjectionPlan::random(42, 200, &shape());
        let text = plan.canonical_text();
        let back = InjectionPlan::from_canonical_text(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(
            back.canonical_text(),
            text,
            "canonical form is a fixed point"
        );

        // The empty plan serializes and reparses too.
        let empty = InjectionPlan::default();
        assert_eq!(
            InjectionPlan::from_canonical_text(&empty.canonical_text()).unwrap(),
            empty
        );

        // Every site kind has a frozen spelling.
        let all = InjectionPlan::explicit([
            (
                1,
                Site::RegFile {
                    cell: 0,
                    x: 1,
                    y: 2,
                    reg: 3,
                    bit: 4,
                },
            ),
            (
                2,
                Site::Spm {
                    cell: 0,
                    x: 1,
                    y: 2,
                    word: 30,
                    bit: 4,
                },
            ),
            (
                3,
                Site::IcacheLine {
                    cell: 0,
                    x: 1,
                    y: 2,
                    line: 9,
                },
            ),
            (
                4,
                Site::NocLink {
                    cell: 0,
                    x: 1,
                    y: 2,
                    port: 3,
                    req: true,
                },
            ),
            (
                5,
                Site::HbmStall {
                    cell: 0,
                    window: 77,
                },
            ),
            (
                6,
                Site::TileFreeze {
                    cell: 0,
                    x: 1,
                    y: 2,
                    cycles: FREEZE_FOREVER,
                },
            ),
        ]);
        assert_eq!(
            all.canonical_text(),
            format!(
                "planv=1;seed=0;inj=1@regfile(0,1,2,3,4)|2@spm(0,1,2,30,4)\
                 |3@icache(0,1,2,9)|4@noc(0,1,2,3,1)|5@hbm(0,77)\
                 |6@freeze(0,1,2,{FREEZE_FOREVER})"
            )
        );
    }

    #[test]
    fn canonical_plan_rejects_garbage() {
        for bad in [
            "",
            "planv=2;seed=0;inj=",
            "seed=0;inj=",
            "planv=1;inj=",
            "planv=1;seed=0",
            "planv=1;seed=0;inj=5@warp(0,0)",
            "planv=1;seed=0;inj=5@regfile(0,1)",
            "planv=1;seed=0;inj=xx@hbm(0,1)",
        ] {
            assert!(
                InjectionPlan::from_canonical_text(bad).is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn avf_table_renders_counts_and_totals() {
        let mut t = AvfTable::new();
        t.record(SiteKind::RegFile, Outcome::Masked);
        t.record(SiteKind::RegFile, Outcome::Sdc);
        t.record(SiteKind::RegFile, Outcome::Sdc);
        t.record(SiteKind::NocLink, Outcome::Masked);
        t.record(SiteKind::IcacheLine, Outcome::Detected);
        t.record(SiteKind::TileFreeze, Outcome::Hang);
        assert_eq!(t.count(SiteKind::RegFile, Outcome::Sdc), 2);
        assert_eq!(t.total(), 6);
        assert_eq!(t.outcome_total(Outcome::Masked), 2);
        assert!((t.avf(SiteKind::RegFile) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.avf(SiteKind::NocLink), 0.0);
        assert_eq!(t.avf(SiteKind::Spm), 0.0, "empty rows have zero AVF");
        let text = t.render();
        assert!(text.contains("regfile"), "{text}");
        assert!(!text.contains("spm "), "empty rows are skipped:\n{text}");
        assert!(text.contains("total"), "{text}");
        assert_eq!(t.summary_line(), "masked=2 sdc=2 detected=1 hang=1");
    }
}
