//! Minimal JSON utilities: string escaping for the hand-written exporters
//! and a strict recursive-descent syntax validator used by the golden
//! tests (no serde anywhere in the workspace).

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Validates that `s` is exactly one well-formed JSON value (per RFC 8259
/// syntax; no trailing garbage). Returns the byte offset of the first
/// error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a fraction digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected an exponent digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "0",
            "-12.5e3",
            "true",
            "null",
            r#""hi \"there\"""#,
            r#"{"a":[1,2,{"b":null}],"c":"é"}"#,
            "  { \"k\" : [ 1 , 2 ] }\n",
        ] {
            assert!(validate(doc).is_ok(), "rejected valid {doc:?}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "nul",
            "{} extra",
            "{'a':1}",
        ] {
            assert!(validate(doc).is_err(), "accepted invalid {doc:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_validation() {
        let nasty = "quote \" backslash \\ newline \n tab \t bell \u{7}";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        assert!(validate(&doc).is_ok(), "{doc}");
    }
}
