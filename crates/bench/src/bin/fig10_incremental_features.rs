//! Figure 10: incremental feature analysis — starting from a
//! TILE64-normalized "Baseline Manycore" and adding, in the paper's order:
//! router bandwidth, cache capacity, core density, non-blocking loads,
//! Ruche network, write-validate, Load Packet Compression, Regional IPOLY
//! and non-blocking caches. Reports per-kernel and geomean speedups.

use hb_bench::{
    bench_cell, bench_size, geomean, header, job_threads, point_config, row, run_instrumented,
    run_ordered, telemetry_out, telemetry_window,
};
use hb_core::{CellDim, MachineConfig};

fn main() {
    let full = bench_cell();
    let quarter = CellDim {
        x: full.x / 2,
        y: full.y / 2,
    };
    let size = bench_size();

    // The configuration ladder (cumulative).
    let base = MachineConfig {
        cell_dim: quarter,
        ruche_factor: 0,
        non_blocking_loads: false,
        write_validate: false,
        load_packet_compression: false,
        ipoly_hashing: false,
        non_blocking_cache: false,
        cache_sets: MachineConfig::baseline_16x8().cache_sets / 2,
        link_occupancy: 2,
        net_fifo_depth: 2,
        ..MachineConfig::baseline_16x8()
    };
    type Step = (&'static str, Box<dyn Fn(&MachineConfig) -> MachineConfig>);
    let steps: Vec<Step> = vec![
        ("baseline manycore", Box::new(|c: &MachineConfig| c.clone())),
        (
            "+router",
            Box::new(|c| MachineConfig {
                link_occupancy: 1,
                net_fifo_depth: 4,
                ..c.clone()
            }),
        ),
        (
            "+cache",
            Box::new(move |c| MachineConfig {
                cache_sets: c.cache_sets * 2,
                ..c.clone()
            }),
        ),
        (
            "+density",
            Box::new(move |c| MachineConfig {
                cell_dim: full,
                ..c.clone()
            }),
        ),
        (
            "+nonblock loads",
            Box::new(|c| MachineConfig {
                non_blocking_loads: true,
                ..c.clone()
            }),
        ),
        (
            "+ruche",
            Box::new(|c| MachineConfig {
                ruche_factor: 3,
                ..c.clone()
            }),
        ),
        (
            "+write-validate",
            Box::new(|c| MachineConfig {
                write_validate: true,
                ..c.clone()
            }),
        ),
        (
            "+load pkt compression",
            Box::new(|c| MachineConfig {
                load_packet_compression: true,
                ..c.clone()
            }),
        ),
        (
            "+regional ipoly",
            Box::new(|c| MachineConfig {
                ipoly_hashing: true,
                ..c.clone()
            }),
        ),
        (
            "+nonblock cache",
            Box::new(|c| MachineConfig {
                non_blocking_cache: true,
                ..c.clone()
            }),
        ),
    ];

    let suite = hb_kernels::suite();
    println!(
        "Figure 10 — incremental feature analysis ({}x{} full Cell, speedup vs Baseline Manycore)\n",
        full.x, full.y
    );
    let mut widths = vec![22usize];
    widths.extend(std::iter::repeat_n(7, suite.len()));
    widths.push(8);
    let mut head = vec!["configuration"];
    head.extend(suite.iter().map(|b| b.name()));
    head.push("geomean");
    header(&head, &widths);

    // The ladder is cumulative, so materialize the configurations first;
    // the (configuration, kernel) simulation points are then independent
    // and fan out across the job pool, collected in submission order.
    let mut configs: Vec<(&'static str, MachineConfig)> = Vec::new();
    let mut cfg = base;
    for (label, apply) in steps {
        cfg = apply(&cfg);
        configs.push((label, cfg.clone()));
    }
    let jobs = job_threads();
    let points: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|si| (0..suite.len()).map(move |ki| (si, ki)))
        .collect();
    let tputs = run_ordered(points, jobs, |_, (si, ki)| {
        let (label, cfg) = &configs[si];
        let bench = &suite[ki];
        eprintln!("  running {} / {label} ...", bench.name());
        let stats = bench
            .run(&point_config(cfg, jobs), size)
            .unwrap_or_else(|e| panic!("{} under '{label}' failed: {e}", bench.name()));
        // Work-normalized (Jacobi's grid scales with the Cell).
        stats.throughput()
    });

    for (si, (label, _)) in configs.iter().enumerate() {
        let mut speedups = Vec::new();
        let mut cells = vec![(*label).to_owned()];
        for ki in 0..suite.len() {
            // Row 0 of the ladder is the Baseline Manycore.
            let speedup = tputs[si * suite.len() + ki] / tputs[ki];
            speedups.push(speedup);
            cells.push(format!("{speedup:.2}"));
        }
        cells.push(format!("{:.2}", geomean(&speedups)));
        row(&cells, &widths);
    }
    println!(
        "\npaper: all optimizations together give ~5.2x geomean over the Baseline\n\
         Manycore; core density is the single largest contributor."
    );

    // `--telemetry <out>`: one instrumented SGEMM pass on the top rung of
    // the ladder (all features on), run inline after the sweep.
    if let Some(out) = telemetry_out() {
        let sgemm = suite
            .iter()
            .find(|b| b.name() == "SGEMM")
            .expect("suite has SGEMM");
        let (_, full_cfg) = configs.last().expect("ladder is non-empty");
        if let Err(e) =
            run_instrumented(sgemm.as_ref(), full_cfg, size, telemetry_window(1000), &out)
        {
            hb_bench::cli::fail(e);
        }
    }
}
