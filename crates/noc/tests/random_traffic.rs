//! Property tests on the network: conservation, in-order pairwise
//! delivery, and correct destinations under arbitrary random traffic, for
//! both routing orders, with and without Ruche links and with narrow
//! links.

use hb_noc::{Coord, Network, NetworkConfig, Packet, RouteOrder};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Flow {
    src: Coord,
    dst: Coord,
}

fn any_flow(w: u8, h: u8) -> impl Strategy<Value = Flow> {
    (0..w, 0..h, 0..w, 0..h).prop_map(|(sx, sy, dx, dy)| Flow {
        src: Coord::new(sx, sy),
        dst: Coord::new(dx, dy),
    })
}

fn run_traffic(cfg: NetworkConfig, flows: &[Flow]) {
    let mut net: Network<u64> = Network::new(cfg);
    let (w, h) = (cfg.width, cfg.height);
    let mut expected: HashMap<u64, Coord> = HashMap::new();
    let mut next_per_pair: HashMap<(Coord, Coord), u64> = HashMap::new();
    let mut id = 0u64;
    let mut queue: Vec<(Flow, u64)> = Vec::new();
    for &f in flows {
        queue.push((f, id));
        expected.insert(id, f.dst);
        id += 1;
    }
    let mut qi = 0;
    for _ in 0..50_000 {
        // Inject in order (per source) as capacity allows.
        while qi < queue.len() {
            let (f, pid) = queue[qi];
            if net.inject(f.src, Packet { src: f.src, dst: f.dst, payload: pid }) {
                qi += 1;
            } else {
                break;
            }
        }
        net.tick();
        for y in 0..h {
            for x in 0..w {
                let here = Coord::new(x, y);
                while let Some(p) = net.eject(here) {
                    let want = expected.remove(&p.payload).expect("duplicate delivery");
                    assert_eq!(want, here, "packet {} misrouted", p.payload);
                    // Same-(src,dst) packets must arrive in injection order
                    // (single-path dimension-ordered routing guarantees it).
                    let next = next_per_pair.entry((p.src, here)).or_insert(0);
                    assert!(
                        p.payload >= *next,
                        "pairwise order violated: got {} after {}",
                        p.payload,
                        *next
                    );
                    *next = p.payload + 1;
                }
            }
        }
        if expected.is_empty() && qi == queue.len() {
            assert!(net.is_drained(), "network retains phantom packets");
            return;
        }
    }
    panic!("{} packets undelivered", expected.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mesh_xy_delivers_everything(flows in prop::collection::vec(any_flow(6, 5), 1..150)) {
        run_traffic(
            NetworkConfig {
                width: 6,
                height: 5,
                ruche_factor: 0,
                order: RouteOrder::XThenY,
                fifo_depth: 2,
                link_occupancy: 1,
            },
            &flows,
        );
    }

    #[test]
    fn ruche_yx_delivers_everything(flows in prop::collection::vec(any_flow(9, 4), 1..150)) {
        run_traffic(
            NetworkConfig {
                width: 9,
                height: 4,
                ruche_factor: 3,
                order: RouteOrder::YThenX,
                fifo_depth: 2,
                link_occupancy: 1,
            },
            &flows,
        );
    }

    #[test]
    fn narrow_links_deliver_everything(flows in prop::collection::vec(any_flow(5, 5), 1..100)) {
        run_traffic(
            NetworkConfig {
                width: 5,
                height: 5,
                ruche_factor: 3,
                order: RouteOrder::XThenY,
                fifo_depth: 1,
                link_occupancy: 3,
            },
            &flows,
        );
    }
}
