//! Machine-level observation hooks for the telemetry layer.
//!
//! The cycle-accurate model stays oblivious to *what* is observed: this
//! module only defines the [`MachineObserver`] trait, the tile-local
//! instant events ([`ObsEvent`]) that fire on kernel-phase marks
//! ([`crate::pgas::csr::MARK`] stores), barrier joins, fence retires and
//! faults, and a thread-local factory through which an external crate
//! (`hb-obs`) attaches an observer to every [`Machine`] built on the
//! current thread.
//!
//! # Cost model
//!
//! The hooks are designed to vanish when unused:
//!
//! - [`Machine::tick`] takes exactly one extra branch per machine cycle —
//!   `cycle >= obs_due` — and `obs_due` is `u64::MAX` unless an observer
//!   is attached.
//! - Tile event capture is gated by a per-tile `observed` flag that is
//!   only consulted on the rare paths (mark stores, barrier joins, fence
//!   retires, faults), never in the fetch/execute hot loop.
//! - Observation never mutates simulated state, so runs are bit-identical
//!   with and without an observer attached.

use crate::config::MachineConfig;
use crate::machine::Machine;
use std::cell::RefCell;

/// What a tile-local instant event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsKind {
    /// A kernel-phase marker: the value stored to the `MARK` CSR.
    Mark(u32),
    /// The tile joined its group barrier.
    BarrierJoin,
    /// A `fence` finished draining the remote scoreboard and retired.
    FenceRetire,
    /// The tile trapped.
    Fault,
    /// An `hb-fault` injection landed on this tile (or, for HBM stalls,
    /// on this tile's Cell, attributed to tile (0,0)).
    Inject(InjectKind),
    /// A corrupted flit was detected and replayed on a NoC link; the event
    /// is attributed to the tile row nearest the link's router.
    Retransmit,
    /// The dynamic race sanitizer (see [`crate::race`]) reported a new
    /// conflicting pair; the event lands on the second-accessing tile.
    Race,
    /// The event scheduler parked the tile on the wake list (see
    /// `crate::sched`); the payload is the stall kind every skipped cycle
    /// will be blamed on, `None` for idle/trapped tiles. Only emitted
    /// under the event schedule — park/wake instants make quiescent spans
    /// visible in traces, they are host-schedule observations, not
    /// architectural events.
    Park(Option<crate::stats::StallKind>),
    /// The event scheduler re-armed a parked tile (timer expiry or event
    /// wake): the first cycle it steps again. One per [`ObsKind::Park`].
    Wake,
}

impl ObsKind {
    /// Serializes the event for checkpointing (stable tag per variant).
    pub(crate) fn snap_save(self, w: &mut hb_mem::SnapWriter) {
        match self {
            ObsKind::Mark(v) => {
                w.u8(0);
                w.u32(v);
            }
            ObsKind::BarrierJoin => w.u8(1),
            ObsKind::FenceRetire => w.u8(2),
            ObsKind::Fault => w.u8(3),
            ObsKind::Inject(k) => {
                w.u8(4);
                w.u8(match k {
                    InjectKind::Reg => 0,
                    InjectKind::Spm => 1,
                    InjectKind::Icache => 2,
                    InjectKind::Hbm => 3,
                    InjectKind::Freeze => 4,
                });
            }
            ObsKind::Retransmit => w.u8(5),
            ObsKind::Race => w.u8(6),
            ObsKind::Park(kind) => {
                w.u8(7);
                match kind {
                    None => w.u8(0),
                    Some(k) => w.u8(1 + k as u8),
                }
            }
            ObsKind::Wake => w.u8(8),
        }
    }

    /// Decodes one event written by [`ObsKind::snap_save`].
    pub(crate) fn snap_load(r: &mut hb_mem::SnapReader) -> Result<ObsKind, hb_mem::SnapError> {
        use crate::stats::StallKind;
        use hb_mem::SnapError;
        Ok(match r.u8()? {
            0 => ObsKind::Mark(r.u32()?),
            1 => ObsKind::BarrierJoin,
            2 => ObsKind::FenceRetire,
            3 => ObsKind::Fault,
            4 => ObsKind::Inject(match r.u8()? {
                0 => InjectKind::Reg,
                1 => InjectKind::Spm,
                2 => InjectKind::Icache,
                3 => InjectKind::Hbm,
                4 => InjectKind::Freeze,
                _ => return Err(SnapError::Bad("unknown inject kind tag")),
            }),
            5 => ObsKind::Retransmit,
            6 => ObsKind::Race,
            7 => ObsKind::Park(match r.u8()? {
                0 => None,
                t if (t as usize) <= StallKind::COUNT => Some(StallKind::ALL[t as usize - 1]),
                _ => return Err(SnapError::Bad("park stall kind out of range")),
            }),
            8 => ObsKind::Wake,
            _ => return Err(SnapError::Bad("unknown observation kind tag")),
        })
    }
}

/// Which structure an [`ObsKind::Inject`] event hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// Integer register-file bit flip.
    Reg,
    /// Scratchpad word bit flip.
    Spm,
    /// Instruction-cache line invalidation (detected parity flip).
    Icache,
    /// HBM channel stall window.
    Hbm,
    /// Whole-tile freeze.
    Freeze,
}

impl InjectKind {
    /// Stable lowercase label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            InjectKind::Reg => "reg",
            InjectKind::Spm => "spm",
            InjectKind::Icache => "icache",
            InjectKind::Hbm => "hbm",
            InjectKind::Freeze => "freeze",
        }
    }
}

/// A tile-local instant event, stamped with the Cell cycle it occurred on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Cell cycle at which the event fired.
    pub cycle: u64,
    /// Cell the tile belongs to.
    pub cell: u8,
    /// Tile coordinates within the Cell.
    pub tile: (u8, u8),
    /// Event payload.
    pub kind: ObsKind,
}

/// A sampling sink driven by [`Machine::tick`].
///
/// The observer is detached from the machine for the duration of each
/// callback, so implementations may freely inspect counters and drain the
/// tiles' event buffers through the `&mut Machine` they receive.
pub trait MachineObserver: Send + std::fmt::Debug {
    /// Called at the end of `Machine::tick` whenever the machine cycle
    /// reaches [`MachineObserver::next_due`]. All five Cell phases and the
    /// inter-cell fabric have run for this cycle; tile state is quiescent
    /// (the same synchronization point as the BSP sync phase, seen from
    /// the machine level), so sampling here composes with the `TilePool`
    /// without locks.
    fn sample(&mut self, machine: &mut Machine);

    /// The next machine cycle at which [`MachineObserver::sample`] should
    /// run (`u64::MAX` to never fire again).
    fn next_due(&self) -> u64;

    /// Called once when the observer is detached (explicitly or when the
    /// machine is dropped), to flush a final partial window.
    fn finish(&mut self, machine: &mut Machine);

    /// Serializes the observer's in-progress window state for a
    /// checkpoint, or `None` if the observer carries no state worth
    /// restoring (the default). Observers that return `Some` here must
    /// accept the same bytes back in [`MachineObserver::restore`] so a
    /// restored run's remaining telemetry windows are identical to the
    /// uninterrupted run's.
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores window state captured by [`MachineObserver::snapshot`].
    ///
    /// # Errors
    ///
    /// [`hb_mem::SnapError`] if the bytes do not decode; the default
    /// implementation accepts nothing.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), hb_mem::SnapError> {
        let _ = bytes;
        Err(hb_mem::SnapError::Bad(
            "observer does not support checkpoint restore",
        ))
    }
}

type Factory = Box<dyn Fn(&MachineConfig) -> Option<Box<dyn MachineObserver>>>;

thread_local! {
    static FACTORY: RefCell<Option<Factory>> = const { RefCell::new(None) };
}

/// Clears the thread's observer factory when dropped.
///
/// Returned by [`set_observer_factory`]; hold it for the duration of the
/// instrumented run.
#[derive(Debug)]
pub struct ObserverScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ObserverScope {
    fn drop(&mut self) {
        FACTORY.with(|f| *f.borrow_mut() = None);
    }
}

/// Installs a factory consulted by every [`Machine::new`] on the current
/// thread: if it returns an observer, the machine attaches it before the
/// first cycle. This is how telemetry reaches machines constructed deep
/// inside benchmark harnesses without threading a parameter through every
/// call site. The factory is thread-local, so concurrent un-instrumented
/// runs on worker threads are unaffected; installing a new factory
/// replaces the previous one.
pub fn set_observer_factory(
    f: impl Fn(&MachineConfig) -> Option<Box<dyn MachineObserver>> + 'static,
) -> ObserverScope {
    FACTORY.with(|slot| *slot.borrow_mut() = Some(Box::new(f)));
    ObserverScope {
        _not_send: std::marker::PhantomData,
    }
}

/// Consults the thread-local factory, if any.
pub(crate) fn make_observer(cfg: &MachineConfig) -> Option<Box<dyn MachineObserver>> {
    FACTORY.with(|slot| slot.borrow().as_ref().and_then(|mk| mk(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CellDim, MachineConfig};

    #[derive(Debug)]
    struct CountingObserver {
        window: u64,
        due: u64,
        samples: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
    }

    impl MachineObserver for CountingObserver {
        fn sample(&mut self, machine: &mut Machine) {
            self.samples.lock().unwrap().push(machine.cycle());
            self.due += self.window;
        }

        fn next_due(&self) -> u64 {
            self.due
        }

        fn finish(&mut self, machine: &mut Machine) {
            self.samples.lock().unwrap().push(machine.cycle());
        }
    }

    fn tiny_cfg() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 2, y: 2 },
            ..MachineConfig::baseline_16x8()
        }
    }

    #[test]
    fn factory_attaches_and_scope_clears() {
        let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let s2 = samples.clone();
        let scope = set_observer_factory(move |_cfg| {
            Some(Box::new(CountingObserver {
                window: 10,
                due: 10,
                samples: s2.clone(),
            }))
        });
        let mut machine = Machine::new(tiny_cfg());
        for _ in 0..25 {
            machine.tick();
        }
        drop(machine); // finish() flushes the partial window
        let got = samples.lock().unwrap().clone();
        assert_eq!(got, vec![10, 20, 25]);
        drop(scope);
        // With the scope gone, new machines are unobserved.
        let machine = Machine::new(tiny_cfg());
        assert!(!machine.is_observed());
    }

    #[test]
    fn factory_may_decline() {
        let _scope = set_observer_factory(|_cfg| None);
        let machine = Machine::new(tiny_cfg());
        assert!(!machine.is_observed());
    }
}
