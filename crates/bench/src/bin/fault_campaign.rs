//! `fault_campaign` — seeded fault-injection campaign with AVF-style
//! outcome classification (the resilience counterpart of the figure
//! binaries).
//!
//! The campaign itself — golden cross-checks, plan expansion, outcome
//! classification — executes through the `hb-serve` campaign service: each
//! of the `--n` runs is a content-addressed job, so with `--out DIR` the
//! results are durable (a killed campaign resumes where it stopped, and
//! re-running the same command is pure cache hits). Without `--out` the
//! store is a temporary directory and behavior matches the classic one-shot
//! harness.
//!
//! Outcomes, classified against the campaign's golden record:
//!
//! - **masked**   — final DRAM digest identical to the golden run,
//! - **sdc**      — run completed but DRAM differs (silent corruption),
//! - **detected** — the machine raised a structured [`hb_core::FaultInfo`],
//! - **hang**     — the run timed out (the watchdog's `HangReport` says why).
//!
//! The golden run is cross-checked exactly as before: a run with an *empty
//! installed plan* must be bit-identical (DRAM digest, cycles,
//! instructions) to a run that never touched `hb-fault`, and — for
//! barrier-free kernels — the cycle-level DRAM must match an `hb-iss`
//! functional execution of the same launch.
//!
//! Everything is a pure function of `--seed`, so repeated invocations and
//! `HB_THREADS=1` vs `HB_THREADS=4` produce identical tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hb-bench --bin fault_campaign -- \
//!   [--kernel sgemm|jacobi] [--seed S] [--n N] [--cell WxH] \
//!   [--disable x,y[;x,y]] [--expect masked=a,sdc=b,detected=c,hang=d] \
//!   [--out DIR] [--threads T] [--verbose]
//! ```

use hb_bench::cli;
use hb_core::{CellDim, MachineConfig};
use hb_fault::{AvfTable, Outcome, SiteKind};
use hb_serve::{Campaign, CancelToken, JobRecord, RunOpts, SimExecutor, Store};
use std::path::PathBuf;

const USAGE: &str = "usage: fault_campaign [--kernel sgemm|jacobi] [--seed S] [--n N] \
[--cell WxH] [--disable x,y[;x,y]] [--expect masked=a,sdc=b,detected=c,hang=d] \
[--out DIR] [--threads T] [--verbose]";

struct Args {
    kernel: String,
    seed: u64,
    n: usize,
    cell: CellDim,
    disabled: Vec<(u8, u8)>,
    expect: Option<[u64; Outcome::COUNT]>,
    out: Option<PathBuf>,
    threads: usize,
    verbose: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        kernel: "sgemm".to_owned(),
        seed: 1,
        n: 50,
        cell: CellDim { x: 4, y: 4 },
        disabled: Vec::new(),
        expect: None,
        out: None,
        threads: hb_bench::job_threads(),
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].clone();
        match flag.as_str() {
            "--kernel" => {
                let v = cli::flag_value(&argv, &mut i, USAGE).to_ascii_lowercase();
                if !matches!(v.as_str(), "sgemm" | "jacobi") {
                    cli::usage_fail(USAGE, format!("unknown kernel {v:?}"));
                }
                out.kernel = v;
            }
            "--seed" => {
                out.seed = cli::parse_value(&flag, &cli::flag_value(&argv, &mut i, USAGE), USAGE)
            }
            "--n" => out.n = cli::parse_value(&flag, &cli::flag_value(&argv, &mut i, USAGE), USAGE),
            "--cell" => out.cell = cli::parse_cell(&cli::flag_value(&argv, &mut i, USAGE), USAGE),
            "--disable" => {
                out.disabled = cli::parse_disabled(&cli::flag_value(&argv, &mut i, USAGE), USAGE)
            }
            "--expect" => {
                let v = cli::flag_value(&argv, &mut i, USAGE);
                let mut want = [0u64; Outcome::COUNT];
                for part in v.split(',') {
                    let Some((key, n)) = part.split_once('=') else {
                        cli::usage_fail(USAGE, format!("bad --expect component {part:?}"));
                    };
                    let Some(slot) = Outcome::ALL.iter().find(|o| o.label() == key.trim()) else {
                        cli::usage_fail(USAGE, format!("unknown outcome {key:?} in --expect"));
                    };
                    want[*slot as usize] = cli::parse_value("--expect", n.trim(), USAGE);
                }
                out.expect = Some(want);
            }
            "--out" => out.out = Some(PathBuf::from(cli::flag_value(&argv, &mut i, USAGE))),
            "--threads" => {
                // Consumed here for arity; job_threads() already parsed it.
                let _ = cli::flag_value(&argv, &mut i, USAGE);
            }
            "--verbose" => out.verbose = true,
            other => cli::usage_fail(USAGE, format!("unknown option {other:?}")),
        }
        i += 1;
    }
    out
}

/// Fetches a job's record or exits with its journaled failure detail.
fn must_get(store: &Store, hash: &str, what: &str) -> JobRecord {
    store.get(hash).unwrap_or_else(|| {
        let detail = store
            .journal()
            .ok()
            .and_then(|j| j.into_iter().rev().find(|e| e.hash == hash))
            .map(|e| e.detail)
            .unwrap_or_else(|| "no result stored".to_owned());
        cli::fail(format!("{what}: {detail}"));
    })
}

fn main() {
    let args = parse_args();
    let cfg = MachineConfig {
        cell_dim: args.cell,
        disabled_tiles: args.disabled.clone(),
        threads: 1,
        ..MachineConfig::baseline_16x8()
    };
    if let Err(e) = cfg.validate() {
        cli::fail(format!("invalid campaign configuration: {e}"));
    }
    println!(
        "fault_campaign: kernel={} cell={}x{} seed={} n={} disabled={:?}",
        args.kernel, cfg.cell_dim.x, cfg.cell_dim.y, args.seed, args.n, args.disabled,
    );

    // Durable store under --out (a full hb-serve campaign directory:
    // `hb-serve status/resume/report --dir DIR` work on it afterwards);
    // otherwise a throwaway temp directory.
    let (dir, ephemeral) = match &args.out {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!("fault-campaign-{}", std::process::id())),
            true,
        ),
    };
    let name = format!(
        "{} cell={}x{} seed={} faults={}",
        args.kernel, args.cell.x, args.cell.y, args.seed, args.n
    );
    let campaign = Campaign::fault(name, &args.kernel, &cfg, args.seed, args.n);
    if let Err(e) = campaign.save(&dir) {
        cli::fail(format!("cannot write campaign manifest: {e}"));
    }
    let store =
        Campaign::open_store(&dir).unwrap_or_else(|e| cli::fail(format!("cannot open store: {e}")));

    let opts = RunOpts {
        threads: args.threads,
        ..RunOpts::default()
    };
    let summary = campaign.run(
        &store,
        &SimExecutor::new(args.threads),
        &opts,
        &CancelToken::new(),
    );

    // Golden record (the service ran its cross-checks; surface them).
    let gold = must_get(&store, &campaign.specs[0].hash(), "golden run failed");
    println!(
        "golden: cycles={} instrs={} dram-digest={:#018x}",
        gold.cycles, gold.instrs, gold.dram_digest
    );
    if gold.checks.split(',').any(|c| c == "empty-plan-identity") {
        println!("zero-injection bit-identity: ok");
    }
    if gold.checks.split(',').any(|c| c == "iss-anchor") {
        println!("hb-iss golden anchor: ok");
    }

    let mut table = AvfTable::new();
    for (i, spec) in campaign.specs[1..].iter().enumerate() {
        let rec = must_get(&store, &spec.hash(), &format!("run {i} failed"));
        let kind = SiteKind::ALL
            .iter()
            .find(|k| k.label() == rec.site)
            .unwrap_or_else(|| cli::fail(format!("run {i}: unknown site {:?}", rec.site)));
        let outcome = Outcome::ALL
            .iter()
            .find(|o| o.label() == rec.outcome)
            .unwrap_or_else(|| cli::fail(format!("run {i}: unknown outcome {:?}", rec.outcome)));
        table.record(*kind, *outcome);
        if args.verbose {
            println!(
                "run {i:>3}: cycle={:>7} site={:<11} -> {}",
                rec.inj_cycle,
                kind.label(),
                outcome.label(),
            );
        }
    }

    println!("\n{}", table.render());
    println!("summary: {}", table.summary_line());
    println!("service: {}", summary.line());
    if !ephemeral {
        println!("store: {}", dir.display());
    }

    let expect_result = args.expect.map(|want| {
        let got: Vec<u64> = Outcome::ALL
            .iter()
            .map(|&o| table.outcome_total(o))
            .collect();
        (got == want, want)
    });
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if let Some((ok, want)) = expect_result {
        if !ok {
            eprintln!(
                "expectation mismatch: wanted masked={} sdc={} detected={} hang={}",
                want[0], want[1], want[2], want[3]
            );
            std::process::exit(1);
        }
        println!("expected outcome counts: ok");
    }
}
