//! BS — Black-Scholes European option pricing (MapReduce dwarf).
//!
//! Compute-intensive and low-communication: each tile prices a
//! rank-strided set of options entirely in FP registers, exercising the
//! iterative FP divide and square-root units heavily (the paper notes BS
//! is characterized by fdiv/fsqrt use and bypass stalls from polynomial
//! evaluation).

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::{emit_exp_approx, emit_ln_approx, prologue};
use hb_asm::{Assembler, Program};
use hb_core::{pgas, Machine, MachineConfig, SimError};
use hb_isa::{Fpr, Fpr::*, Gpr::*};
use hb_workloads::{gen, golden};
use std::sync::Arc;

/// The Black-Scholes benchmark over `count` options.
#[derive(Debug, Clone)]
pub struct BlackScholes {
    /// Number of options priced.
    pub count: u32,
}

impl Default for BlackScholes {
    fn default() -> BlackScholes {
        BlackScholes { count: 1024 }
    }
}

/// Emits `dst = CND(d)` (cumulative normal distribution, golden-matching).
/// Clobbers `Ft0..Ft7`, `T4` and `T5`; `d` must not alias those.
fn emit_cnd(a: &mut Assembler, dst: Fpr, d: Fpr) {
    const COEFF: [f32; 5] = [
        0.319_381_53,
        -0.356_563_78,
        1.781_477_9,
        -1.821_255_9,
        1.330_274_4,
    ];
    // l = |d|
    a.fabs(Ft0, d);
    // kk = 1 / (1 + 0.2316419 * l)
    a.lif(Ft1, T5, 0.231_641_9);
    a.lif(Ft2, T5, 1.0);
    a.fmadd(Ft1, Ft0, Ft1, Ft2);
    a.fdiv(Ft1, Ft2, Ft1);
    // poly = kk*(A0 + kk*(A1 + kk*(A2 + kk*(A3 + kk*A4))))
    a.lif(Ft3, T5, COEFF[4]);
    for i in (0..4).rev() {
        a.lif(Ft4, T5, COEFF[i]);
        a.fmadd(Ft3, Ft3, Ft1, Ft4);
    }
    a.fmul(Ft3, Ft3, Ft1);
    // ft5 = exp(-l*l/2)
    a.fmul(Ft4, Ft0, Ft0);
    a.lif(Ft5, T5, -0.5);
    a.fmul(Ft4, Ft4, Ft5);
    emit_exp_approx(a, Ft5, Ft4, Ft6, T5);
    // w = 1 - 0.39894228 * ft5 * poly
    a.lif(Ft6, T5, 0.398_942_3);
    a.fmul(Ft6, Ft6, Ft5);
    a.fmul(Ft6, Ft6, Ft3);
    a.lif(Ft7, T5, 1.0);
    a.fsub(dst, Ft7, Ft6);
    // if d < 0: w = 1 - w
    a.fmv_w_x(Ft0, Zero);
    a.flt(T5, d, Ft0);
    let skip = a.new_label();
    a.beqz(T5, skip);
    a.lif(Ft7, T4, 1.0);
    a.fsub(dst, Ft7, dst);
    a.bind(skip);
}

impl BlackScholes {
    fn sized(&self, size: SizeClass) -> BlackScholes {
        match size {
            SizeClass::Tiny => BlackScholes { count: 64 },
            SizeClass::Small => self.clone(),
            SizeClass::Large => BlackScholes { count: 4096 },
        }
    }

    /// Builds the kernel. Arguments: `a0`=spot, `a1`=strike, `a2`=time,
    /// `a3`=out, `a4`=count.
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        a.mv(S0, S10); // i = rank
        let loop_top = a.new_label();
        let done = a.new_label();
        a.bind(loop_top);
        a.bge(S0, A4, done);

        a.slli(T0, S0, 2);
        a.add(T1, A0, T0);
        a.flw(Fs0, T1, 0); // s
        a.add(T1, A1, T0);
        a.flw(Fs1, T1, 0); // k
        a.add(T1, A2, T0);
        a.flw(Fs2, T1, 0); // t

        // fs3 = sqrt(t)
        a.fsqrt(Fs3, Fs2);
        // fs4 = ln(s/k)
        a.fdiv(Fs5, Fs0, Fs1);
        emit_ln_approx(&mut a, Fs4, Fs5, Ft0, Ft1, Ft2, T5);
        // fs4 += (R + V^2/2) * t
        a.lif(Ft0, T5, 0.02 + 0.30 * 0.30 / 2.0);
        a.fmadd(Fs4, Ft0, Fs2, Fs4);
        // fs5 = V * sqrt(t); d1 = fs4/fs5; d2 = d1 - fs5
        a.lif(Ft0, T5, 0.30);
        a.fmul(Fs5, Ft0, Fs3);
        a.fdiv(Fs6, Fs4, Fs5); // d1
        a.fsub(Fs7, Fs6, Fs5); // d2
                               // fs8 = CND(d1), fs9 = CND(d2)
        emit_cnd(&mut a, Fs8, Fs6);
        emit_cnd(&mut a, Fs9, Fs7);
        // fs10 = exp(-R*t)
        a.lif(Ft0, T5, -0.02);
        a.fmul(Ft0, Ft0, Fs2);
        emit_exp_approx(&mut a, Fs10, Ft0, Ft1, T5);
        // price = s*cnd(d1) - k*exp(-rt)*cnd(d2)
        a.fmul(Ft0, Fs1, Fs10);
        a.fmul(Ft0, Ft0, Fs9);
        a.fmsub(Fa0, Fs0, Fs8, Ft0);
        // out[i] = price
        a.slli(T0, S0, 2);
        a.add(T1, A3, T0);
        a.fsw(Fa0, T1, 0);

        a.add(S0, S0, S11);
        a.j(loop_top);
        a.bind(done);
        a.fence();
        a.ecall();
        a.assemble(0).expect("black-scholes assembles")
    }

    /// Runs and validates against [`golden::black_scholes_call`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        let opts = gen::bs_options(self.count as usize, 0xB5);
        let expect: Vec<f32> = opts
            .iter()
            .map(|&(s, k, t)| golden::black_scholes_call(s, k, t))
            .collect();

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let n = self.count;
        let spot = cell.alloc(n * 4, 64);
        let strike = cell.alloc(n * 4, 64);
        let time = cell.alloc(n * 4, 64);
        let out = cell.alloc(n * 4, 64);
        let d = cell.dram_mut();
        for (i, &(s, k, t)) in opts.iter().enumerate() {
            d.write_f32(spot + 4 * i as u32, s);
            d.write_f32(strike + 4 * i as u32, k);
            d.write_f32(time + 4 * i as u32, t);
        }
        let program = Arc::new(Self::program());
        machine.launch(
            0,
            &program,
            &[
                pgas::local_dram(spot),
                pgas::local_dram(strike),
                pgas::local_dram(time),
                pgas::local_dram(out),
                n,
            ],
        );
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let got = machine.cell(0).dram().read_f32_slice(out, n as usize);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= e.abs() * 2e-3 + 2e-3,
                "BS mismatch at option {i}: sim {g} vs golden {e} ({:?})",
                opts[i]
            );
        }
        Ok(BenchStats::collect("BS", summary.cycles, &machine))
    }
}

impl Benchmark for BlackScholes {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn dwarf(&self) -> &'static str {
        "MapReduce"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::{CellDim, StallKind};

    #[test]
    fn bs_validates_and_uses_fp_divider() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = BlackScholes::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(stats.core.fp_cycles > 0);
        // The paper: BS leans on the iterative fdiv/fsqrt unit.
        assert!(
            stats.core.stall(StallKind::FpBusy) + stats.core.stall(StallKind::Bypass) > 0,
            "expected FP pipeline pressure"
        );
    }
}
