//! Binary snapshot encoding for checkpoint/restore.
//!
//! Every dynamic-state type in the simulator serializes itself through
//! [`SnapWriter`] and rebuilds from [`SnapReader`]. The format is a flat
//! little-endian byte stream with no self-description beyond section tags:
//! the reader must know the layout, which it does because writer and reader
//! live next to each other in each type's own module. The result is
//! deterministic by construction — the same machine state always encodes to
//! the same bytes — which is what lets the checkpoint layer content-hash
//! snapshots and lets tests `assert_eq!` whole encodings.
//!
//! This module lives in `hb-mem` (the bottom of the crate stack, zero
//! dependencies) so `hb-noc`, `hb-cache` and `hb-core` can all reach it.
//!
//! Conventions:
//!
//! - integers are little-endian; `usize` travels as `u64`;
//! - `f32` travels as its IEEE bit pattern (bit-exact restore);
//! - sequences are a `u64` length followed by the elements;
//! - `Option<T>` is a presence byte followed by `T` when present;
//! - four-byte section tags ([`SnapWriter::tag`]/[`SnapReader::expect_tag`])
//!   bracket each composite type, so a layout mismatch fails fast with a
//!   named error instead of silently misreading downstream fields.

use std::fmt;

/// Snapshot decoding errors. Encoding is infallible (it only appends to a
/// buffer); every decode error is one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the expected field.
    Eof,
    /// A section tag or validated field didn't match; the message names the
    /// section or invariant.
    Bad(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof => write!(f, "snapshot truncated"),
            SnapError::Bad(what) => write!(f, "snapshot mismatch: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only snapshot encoder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A fresh, empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a four-byte section tag.
    pub fn tag(&mut self, tag: &[u8; 4]) {
        self.buf.extend_from_slice(tag);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a little-endian `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f32` as its IEEE-754 bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an `Option` presence byte; the caller encodes the payload
    /// when this returns `true`.
    pub fn opt(&mut self, present: bool) -> bool {
        self.bool(present);
        present
    }
}

/// Cursor-based snapshot decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Checks the stream was fully consumed (trailing garbage is a layout
    /// mismatch, not padding).
    ///
    /// # Errors
    ///
    /// [`SnapError::Bad`] when bytes remain.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Bad("trailing bytes after snapshot"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Eof)?;
        if end > self.buf.len() {
            return Err(SnapError::Eof);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads and verifies a four-byte section tag.
    ///
    /// # Errors
    ///
    /// [`SnapError::Bad`] naming `what` on mismatch, [`SnapError::Eof`] on
    /// truncation.
    pub fn expect_tag(&mut self, tag: &[u8; 4], what: &'static str) -> Result<(), SnapError> {
        if self.take(4)? == tag {
            Ok(())
        } else {
            Err(SnapError::Bad(what))
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] on truncation (likewise for every reader below).
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte; any value other than 0/1 is a layout error.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] or [`SnapError::Bad`].
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Bad("bool byte out of range")),
        }
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] on truncation.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] on truncation.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] on truncation.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` into `usize`, rejecting values the host cannot index.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] or [`SnapError::Bad`].
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Bad("usize out of range"))
    }

    /// Reads an `f32` from its stored bit pattern.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] on truncation.
    pub fn f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a length-prefixed byte vector. The length is bounded by the
    /// bytes actually remaining, so a corrupt length cannot trigger a huge
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] or [`SnapError::Bad`].
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Eof);
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] or [`SnapError::Bad`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<String, SnapError> {
        String::from_utf8(self.bytes()?).map_err(|_| SnapError::Bad("invalid UTF-8 string"))
    }

    /// Reads a sequence length, sanity-bounded by the remaining bytes (every
    /// element costs at least one byte).
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] or [`SnapError::Bad`].
    pub fn seq_len(&mut self) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Eof);
        }
        Ok(n)
    }

    /// Reads an `Option` presence byte.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] or [`SnapError::Bad`].
    pub fn opt(&mut self) -> Result<bool, SnapError> {
        self.bool()
    }
}

impl crate::Dram {
    /// Serializes the full byte image.
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.tag(b"DRAM");
        w.bytes(self.slice(0, self.len()));
    }

    /// Restores the byte image in place; the capacity must match (it is
    /// config-derived, and the checkpoint layer has already verified the
    /// config).
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or a capacity mismatch.
    pub fn snap_load(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_tag(b"DRAM", "Dram section")?;
        let bytes = r.bytes()?;
        if bytes.len() != self.len() {
            return Err(SnapError::Bad("Dram capacity mismatch"));
        }
        self.write_bytes(0, &bytes);
        Ok(())
    }
}

impl crate::ClockDivider {
    /// Serializes the divider (ratio + accumulator).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        let (numer, denom, acc) = self.parts();
        w.u64(numer);
        w.u64(denom);
        w.u64(acc);
    }

    /// Restores a divider.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on truncation or an invalid ratio.
    pub fn snap_load(r: &mut SnapReader) -> Result<crate::ClockDivider, SnapError> {
        let numer = r.u64()?;
        let denom = r.u64()?;
        let acc = r.u64()?;
        if denom == 0 || numer > denom || acc >= denom {
            return Err(SnapError::Bad("ClockDivider ratio out of range"));
        }
        let mut d = crate::ClockDivider::new(numer, denom);
        d.set_acc(acc);
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = SnapWriter::new();
        w.tag(b"TEST");
        w.u8(7);
        w.bool(true);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.usize(42);
        w.f32(-1.5);
        w.bytes(b"abc");
        w.str("hé");
        assert!(w.opt(true));
        w.u8(9);
        assert!(!w.opt(false));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        r.expect_tag(b"TEST", "test").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f32().unwrap(), -1.5);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.str().unwrap(), "hé");
        assert!(r.opt().unwrap());
        assert_eq!(r.u8().unwrap(), 9);
        assert!(!r.opt().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_mismatch_are_clean_errors() {
        let mut w = SnapWriter::new();
        w.tag(b"AAAA");
        w.u32(1);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes[..3]);
        assert_eq!(r.expect_tag(b"AAAA", "a"), Err(SnapError::Eof));
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.expect_tag(b"BBBB", "b section"),
            Err(SnapError::Bad("b section"))
        );
        let mut r = SnapReader::new(&bytes);
        r.expect_tag(b"AAAA", "a").unwrap();
        assert_eq!(r.u64(), Err(SnapError::Eof));
        // A corrupt huge length cannot allocate.
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let huge = w.into_bytes();
        assert_eq!(SnapReader::new(&huge).bytes(), Err(SnapError::Eof));
    }

    #[test]
    fn dram_and_divider_round_trip() {
        let mut d = crate::Dram::new(64);
        d.write_u32(8, 0xdead_beef);
        let mut div = crate::ClockDivider::new(1_000, 1_350);
        for _ in 0..7 {
            div.tick();
        }
        let mut w = SnapWriter::new();
        d.snap_save(&mut w);
        div.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        let mut d2 = crate::Dram::new(64);
        d2.snap_load(&mut r).unwrap();
        assert_eq!(d2, d);
        let div2 = crate::ClockDivider::snap_load(&mut r).unwrap();
        assert_eq!(div2, div);
        r.finish().unwrap();
        // Continued ticks agree bit-for-bit.
        let (mut a, mut b) = (div, div2);
        for _ in 0..100 {
            assert_eq!(a.tick(), b.tick());
        }

        // Capacity mismatch is a clean error.
        let mut r = SnapReader::new(&bytes);
        let mut wrong = crate::Dram::new(32);
        assert!(wrong.snap_load(&mut r).is_err());
    }
}
