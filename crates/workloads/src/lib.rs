//! Workload generators and golden reference implementations for the
//! HammerBlade parallel benchmark suite (paper Table I).
//!
//! The paper evaluates on SuiteSparse matrices (wiki-Vote, roadNet-CA,
//! hollywood-2009, ...); those files are not available offline, so this
//! crate provides synthetic generators with the same qualitative structure:
//!
//! - [`gen::rmat`] — power-law graphs (wiki-Vote / soc-network-like),
//! - [`gen::road_grid`] — near-constant-degree planar graphs
//!   (roadNet-CA-like),
//! - [`gen::uniform_sparse`] — uniformly random sparse matrices,
//!
//! plus dense matrix/signal generators and host-side golden
//! implementations of all ten kernels used to validate simulator output.

pub mod csr;
pub mod gen;
pub mod golden;
pub mod mtx;

pub use csr::CsrMatrix;
pub use mtx::{parse_mtx, to_mtx, MtxError};
