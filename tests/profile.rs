//! Cross-crate integration: the guest-code profiler end-to-end over the
//! benchmark suite.
//!
//! Three properties are pinned here, matching the profiler's contract:
//!
//! 1. the SGEMM profile names the FMA inner-loop block as the top retired
//!    block, with more than half of all retired instructions;
//! 2. the folded-stack export is byte-identical across host thread counts
//!    and with the event-driven scheduler on or off;
//! 3. enabling profiling does not change simulated cycles.

use hammerblade::core::{CellDim, MachineConfig};
use hammerblade::kernels::{suite, SizeClass};
use hammerblade::prof::{folded, summary, Analysis};

fn cfg(threads: usize, event_core: bool, profile: bool) -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 4, y: 2 },
        threads,
        event_core,
        profile,
        ..MachineConfig::baseline_16x8()
    }
}

/// Runs SGEMM at tiny scale under the profiler and returns the analysis,
/// the FMA-block disassembly of the top retired block, and the cycle count.
fn sgemm_profile(threads: usize, event_core: bool) -> (Analysis, Vec<String>, u64) {
    let suite = suite();
    let bench = suite.iter().find(|b| b.name() == "SGEMM").unwrap();
    let (scope, store) = hammerblade::prof::attach();
    let stats = bench
        .run(&cfg(threads, event_core, true), SizeClass::Tiny)
        .unwrap();
    drop(scope);
    let store = store.lock().unwrap();
    let run = store.last().expect("profiled machine harvests a profile");
    let analysis = Analysis::analyze("SGEMM", run);
    let top = analysis
        .ranked
        .iter()
        .max_by_key(|r| r.retired)
        .expect("nonempty profile");
    let body: Vec<String> = run.program.instrs()[top.start..top.end]
        .iter()
        .map(|i| i.to_string())
        .collect();
    (analysis, body, stats.cycles)
}

#[test]
fn sgemm_fma_inner_loop_dominates_retired_instructions() {
    let (a, body, _) = sgemm_profile(1, false);
    let top = a.ranked.iter().max_by_key(|r| r.retired).unwrap();
    assert!(
        a.retired_share_bp(top) > 5000,
        "top block holds {} bp of retired instructions, want > 5000",
        a.retired_share_bp(top)
    );
    assert!(
        body.iter().any(|d| d.starts_with("fmadd")),
        "top retired block is the FMA inner loop, got {body:?}"
    );
    // Shares are exact basis points of the tile-cycle total.
    let total: u64 = a.ranked.iter().map(|r| a.share_bp(r)).sum();
    assert!(total <= 10_000, "block shares sum to {total} bp");
}

#[test]
fn profile_exports_are_identical_across_host_schedules() {
    let (base, _, _) = sgemm_profile(1, false);
    let folded_base = folded::to_string(&base);
    let ndjson_base = summary::to_ndjson(&base);
    assert!(!folded_base.is_empty());
    for (threads, event_core) in [(1, true), (4, false), (4, true)] {
        let (a, _, _) = sgemm_profile(threads, event_core);
        assert_eq!(
            folded::to_string(&a),
            folded_base,
            "folded export differs at threads={threads} event_core={event_core}"
        );
        assert_eq!(
            summary::to_ndjson(&a),
            ndjson_base,
            "NDJSON export differs at threads={threads} event_core={event_core}"
        );
    }
}

#[test]
fn profiling_does_not_change_simulated_cycles() {
    let suite = suite();
    let bench = suite.iter().find(|b| b.name() == "SGEMM").unwrap();
    let off = bench.run(&cfg(1, true, false), SizeClass::Tiny).unwrap();
    let (_, _, on_cycles) = sgemm_profile(1, true);
    assert_eq!(off.cycles, on_cycles, "profiling must be timing-invisible");
}
