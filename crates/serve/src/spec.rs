//! The campaign job model: a [`JobSpec`] is a canonicalized
//! (kernel, configuration, seed, injection plan, campaign kind) tuple with a
//! stable content hash.
//!
//! The hash folds in a **revision** — the store schema version
//! ([`SCHEMA_REV`]) plus the binary revision ([`binary_rev`], the
//! `HB_SERVE_REV` environment variable, typically a git SHA in CI) — so
//! results simulated by an older binary or recorded under an older layout
//! never alias fresh jobs. Identical `(revision, kernel, config, seed, plan,
//! kind)` tuples hash identically, which is the whole caching story: the
//! content-addressed store keys results by this hash.

use hb_core::MachineConfig;
use hb_fault::InjectionPlan;

/// Version of the job canonical form *and* the stored result layout. Bump on
/// any change to [`JobSpec::canonical_line`], the canonical config/plan
/// serializations it embeds, or the [`crate::store::JobRecord`] fields.
///
/// rev 2: `JobRecord` gained the `profile` field (hot-block table of
/// `profile:<size>` jobs).
///
/// rev 3: hang records carry a replayable checkpoint artifact
/// (`artifacts = ckpt/hang-<hash>.ckpt`), the kernel namespace gained the
/// `warm:<kernel>` shared-checkpoint prefix, and cycle accounting for
/// fault runs is total-since-launch (identical for cold runs, but the
/// contract is now explicit so resumed runs classify bit-identically).
pub const SCHEMA_REV: u32 = 3;

/// The binary revision folded into every job hash: `HB_SERVE_REV` when set
/// (CI sets it to the commit SHA so rebuilt binaries invalidate the cache),
/// else `"dev"`. Whitespace is stripped so the canonical line stays
/// single-line and space-delimited.
pub fn binary_rev() -> String {
    match std::env::var("HB_SERVE_REV") {
        Ok(v) if !v.trim().is_empty() => v.split_whitespace().collect(),
        _ => "dev".to_owned(),
    }
}

/// What a job simulates and how its result is interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// Zero-injection reference run: records the golden DRAM digest and
    /// cycle count that fault jobs of the same (kernel, config) classify
    /// against, and performs the empty-plan bit-identity and `hb-iss`
    /// functional-anchor cross-checks.
    Golden,
    /// One fault-injection run, classified masked/sdc/detected/hang against
    /// the campaign's golden record.
    Fault,
    /// One sweep point: `hb_kernels::Benchmark::run` at a size class,
    /// recording cycles (ablation/performance campaigns).
    Ablation {
        /// Kernel input size class: `tiny`, `small` or `large`.
        size: String,
    },
    /// One two-sided race check: the kernel's program through the static
    /// phase-conflict pass and a full benchmark run under the dynamic
    /// epoch sanitizer. The record's `checks` field carries
    /// `static=N,dynamic=M`; the outcome is `clean` or `racy`.
    RaceCheck {
        /// Kernel input size class for the sanitized run.
        size: String,
    },
    /// One guest-code profiling run: `hb_kernels::Benchmark::run` at a
    /// size class with `MachineConfig::profile` enabled, recording cycles
    /// plus the hot basic-block table (the record's `profile` field, in
    /// `hb_prof::compact_top` form). Profiling is observation-only, so
    /// cycles match the plain ablation run bit-for-bit.
    Profile {
        /// Kernel input size class for the profiled run.
        size: String,
    },
}

impl JobKind {
    /// Stable token used in the canonical line.
    pub fn canonical(&self) -> String {
        match self {
            JobKind::Golden => "golden".to_owned(),
            JobKind::Fault => "fault".to_owned(),
            JobKind::Ablation { size } => format!("ablation:{size}"),
            JobKind::RaceCheck { size } => format!("race:{size}"),
            JobKind::Profile { size } => format!("profile:{size}"),
        }
    }

    /// Parses a [`JobKind::canonical`] token.
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown token.
    pub fn from_canonical(text: &str) -> Result<JobKind, String> {
        match text {
            "golden" => Ok(JobKind::Golden),
            "fault" => Ok(JobKind::Fault),
            _ => match text.split_once(':') {
                Some(("ablation", size)) if !size.is_empty() => Ok(JobKind::Ablation {
                    size: size.to_owned(),
                }),
                Some(("race", size)) if !size.is_empty() => Ok(JobKind::RaceCheck {
                    size: size.to_owned(),
                }),
                Some(("profile", size)) if !size.is_empty() => Ok(JobKind::Profile {
                    size: size.to_owned(),
                }),
                _ => Err(format!("unknown job kind {text:?}")),
            },
        }
    }
}

/// The injection plan a job runs under, in hashable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanSpec {
    /// No injection (golden and ablation jobs).
    None,
    /// `InjectionPlan::random(seed, faults, shape)` where `shape` is derived
    /// deterministically from the campaign's golden record — so `(seed,
    /// faults)` fully determines the plan at a given revision.
    Seeded {
        /// Faults per run.
        faults: u32,
    },
    /// An explicit fault schedule, canonicalized via
    /// `InjectionPlan::canonical_text`.
    Explicit(InjectionPlan),
}

impl PlanSpec {
    /// Stable token used in the canonical line (no spaces).
    pub fn canonical(&self) -> String {
        match self {
            PlanSpec::None => "none".to_owned(),
            PlanSpec::Seeded { faults } => format!("seeded:{faults}"),
            PlanSpec::Explicit(plan) => format!("explicit:{{{}}}", plan.canonical_text()),
        }
    }

    /// Parses a [`PlanSpec::canonical`] token.
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed token.
    pub fn from_canonical(text: &str) -> Result<PlanSpec, String> {
        if text == "none" {
            return Ok(PlanSpec::None);
        }
        if let Some(n) = text.strip_prefix("seeded:") {
            return Ok(PlanSpec::Seeded {
                faults: n.parse().map_err(|_| format!("bad fault count {n:?}"))?,
            });
        }
        if let Some(body) = text.strip_prefix("explicit:{") {
            let body = body
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated explicit plan {text:?}"))?;
            return Ok(PlanSpec::Explicit(InjectionPlan::from_canonical_text(
                body,
            )?));
        }
        Err(format!("unknown plan spec {text:?}"))
    }
}

/// One fully-specified simulation job. Everything that can change the
/// simulated result is in here (plus the revision); everything that cannot
/// (`label`, host thread counts) stays out of the hash.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Campaign kind.
    pub kind: JobKind,
    /// Kernel name: `sgemm`/`jacobi` for golden/fault jobs, a suite name
    /// (optionally `Name@variant`, e.g. `SGEMM@blocked`) for ablation jobs.
    pub kernel: String,
    /// Seed: selects the injection plan for fault jobs; 0 where unused.
    pub seed: u64,
    /// Injection plan.
    pub plan: PlanSpec,
    /// Machine configuration (canonicalized; `threads` never hashes).
    pub config: MachineConfig,
    /// Display label for reports (sweep point name). **Not hashed.**
    pub label: String,
}

impl JobSpec {
    /// The canonical single-line form the content hash is computed over.
    /// Space-delimited fields; none of the field serializations contain
    /// spaces. `label` is display-only and excluded.
    pub fn canonical_line(&self) -> String {
        format!(
            "hbjob v1 rev={}.{} kind={} kernel={} seed={} plan={} cfg{{{}}}",
            SCHEMA_REV,
            binary_rev(),
            self.kind.canonical(),
            self.kernel,
            self.seed,
            self.plan.canonical(),
            self.config.canonical_text(),
        )
    }

    /// Content hash: 128-bit FNV-1a over [`JobSpec::canonical_line`], as 32
    /// lowercase hex digits. The store keys result objects by this.
    pub fn hash(&self) -> String {
        fnv1a128_hex(self.canonical_line().as_bytes())
    }

    /// The manifest line: the canonical line plus the display label.
    pub fn manifest_line(&self) -> String {
        format!("{} label={}", self.canonical_line(), self.label)
    }

    /// Parses a [`JobSpec::manifest_line`] (or a bare canonical line — the
    /// label then defaults to empty).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field. The revision field is
    /// parsed but **not** required to match the current binary: old manifest
    /// entries must load so `status` can report them as stale-revision
    /// misses rather than erroring.
    pub fn from_manifest_line(line: &str) -> Result<JobSpec, String> {
        let rest = line
            .strip_prefix("hbjob v1 ")
            .ok_or_else(|| format!("not an hbjob v1 line: {line:?}"))?;
        let mut kind = None;
        let mut kernel = None;
        let mut seed = None;
        let mut plan = None;
        let mut config = None;
        let mut label = String::new();
        // `label=` swallows the rest of the line (labels may contain spaces).
        let (head, tail) = match rest.split_once(" label=") {
            Some((h, t)) => (h, Some(t)),
            None => (rest, None),
        };
        if let Some(t) = tail {
            label = t.to_owned();
        }
        for tok in head.split_ascii_whitespace() {
            // cfg{...} is one token (the canonical config has no spaces) and
            // contains '=' characters of its own; handle it structurally.
            if let Some(body) = tok.strip_prefix("cfg{") {
                let body = body
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated cfg in {line:?}"))?;
                config = Some(MachineConfig::from_canonical_text(body)?);
                continue;
            }
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("malformed job field {tok:?}"))?;
            match k {
                "rev" => {} // informational; mismatches surface as cache misses
                "kind" => kind = Some(JobKind::from_canonical(v)?),
                "kernel" => kernel = Some(v.to_owned()),
                "seed" => {
                    seed = Some(v.parse::<u64>().map_err(|_| format!("bad seed {v:?}"))?);
                }
                "plan" => plan = Some(PlanSpec::from_canonical(v)?),
                _ => return Err(format!("unknown job field {k:?}")),
            }
        }

        Ok(JobSpec {
            kind: kind.ok_or("missing kind")?,
            kernel: kernel.ok_or("missing kernel")?,
            seed: seed.ok_or("missing seed")?,
            plan: plan.ok_or("missing plan")?,
            config: config.ok_or("missing cfg")?,
            label,
        })
    }
}

/// 128-bit FNV-1a, rendered as 32 lowercase hex digits.
pub fn fnv1a128_hex(bytes: &[u8]) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_fault::{InjectionPlan, PlanShape};

    fn spec() -> JobSpec {
        JobSpec {
            kind: JobKind::Fault,
            kernel: "sgemm".to_owned(),
            seed: 7,
            plan: PlanSpec::Seeded { faults: 1 },
            config: MachineConfig::baseline_16x8(),
            label: "run 7".to_owned(),
        }
    }

    #[test]
    fn hash_is_stable_and_label_free() {
        let a = spec();
        let mut b = spec();
        b.label = "something else".to_owned();
        assert_eq!(a.hash(), b.hash(), "label must not affect the hash");
        assert_eq!(a.hash().len(), 32);

        let mut c = spec();
        c.config.threads = 16;
        assert_eq!(a.hash(), c.hash(), "host threads must not affect the hash");
    }

    #[test]
    fn hash_changes_on_seed_kernel_kind_plan_and_config() {
        let base = spec();
        let mut m = spec();
        m.seed = 8;
        assert_ne!(base.hash(), m.hash());
        let mut m = spec();
        m.kernel = "jacobi".to_owned();
        assert_ne!(base.hash(), m.hash());
        let mut m = spec();
        m.kind = JobKind::Golden;
        assert_ne!(base.hash(), m.hash());
        let mut m = spec();
        m.plan = PlanSpec::Seeded { faults: 2 };
        assert_ne!(base.hash(), m.hash());
        let mut m = spec();
        m.config.ruche_factor = 0;
        assert_ne!(base.hash(), m.hash());
    }

    #[test]
    fn manifest_line_roundtrips() {
        let shape = PlanShape {
            cells: 1,
            dim: (4, 4),
            spm_words: 512,
            icache_lines: 128,
            cycles: (100, 5000),
        };
        for s in [
            spec(),
            JobSpec {
                kind: JobKind::Golden,
                plan: PlanSpec::None,
                label: String::new(),
                ..spec()
            },
            JobSpec {
                kind: JobKind::Ablation {
                    size: "small".to_owned(),
                },
                kernel: "SGEMM@blocked".to_owned(),
                plan: PlanSpec::None,
                label: "ruche=3 sweep point".to_owned(),
                ..spec()
            },
            JobSpec {
                kind: JobKind::RaceCheck {
                    size: "tiny".to_owned(),
                },
                kernel: "BFS@diropt".to_owned(),
                plan: PlanSpec::None,
                label: "race smoke".to_owned(),
                ..spec()
            },
            JobSpec {
                kind: JobKind::Profile {
                    size: "small".to_owned(),
                },
                kernel: "Jacobi".to_owned(),
                plan: PlanSpec::None,
                label: "hot blocks".to_owned(),
                ..spec()
            },
            JobSpec {
                plan: PlanSpec::Explicit(InjectionPlan::random(9, 3, &shape)),
                ..spec()
            },
        ] {
            let line = s.manifest_line();
            let back = JobSpec::from_manifest_line(&line).unwrap();
            // threads/event_core are host-only, not canonical; compare
            // modulo them.
            let mut want = s.clone();
            want.config.threads = back.config.threads;
            want.config.event_core = back.config.event_core;
            assert_eq!(back, want, "roundtrip of {line}");
            assert_eq!(back.hash(), s.hash());
        }
    }

    #[test]
    fn manifest_parse_rejects_garbage() {
        for bad in [
            "",
            "hbjob v2 kind=golden",
            "hbjob v1 kind=warp kernel=x seed=0 plan=none cfg{}",
            "hbjob v1 kind=golden kernel=x seed=z plan=none cfg{}",
            "hbjob v1 kind=golden kernel=x seed=0 plan=none",
        ] {
            assert!(JobSpec::from_manifest_line(bad).is_err(), "{bad:?}");
        }
    }
}
