//! The simulation executor: turns a [`JobSpec`] into a [`JobRecord`] by
//! actually running the simulator. This is the execution core that
//! `fault_campaign` previously carried inline; it moved here so the
//! `hb-serve` binary, the bench harnesses and the tests all share one
//! implementation (and so every caller gains caching/resume for free).
//!
//! Golden/fault jobs run the SPM-blocked SGEMM or the Jacobi kernel with
//! seeded inputs — identical initial DRAM on every run — and classify
//! against the campaign's golden record. Ablation jobs run any
//! `hb_kernels::suite()` benchmark at a size class and record cycles.
//!
//! Fault jobs can additionally checkpoint: with an interval configured
//! (`with_ckpt_every`), each run periodically snapshots its machine into
//! the store under the job hash, a killed worker's next attempt restores
//! from the last snapshot instead of restarting, and a `warm:<kernel>`
//! campaign restores every run from one shared post-warmup checkpoint.
//! Restore is bit-exact (see `hb-ckpt`), so resumed and warm-started runs
//! classify identically to cold ones.

use crate::pool::{Executor, JobError};
use crate::spec::{JobKind, JobSpec, PlanSpec};
use crate::store::{JobRecord, Store};
use hb_asm::Program;
use hb_core::{pgas, Machine, MachineConfig, SimError, SnapshotDram};
use hb_fault::{InjectionPlan, PlanShape};
use hb_kernels::{Jacobi, Sgemm, SizeClass};
use hb_workloads::gen;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

/// The kernels golden/fault campaigns can run (the ones with seeded input
/// preparation and a deterministic golden image).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKernel {
    /// SPM-blocked SGEMM (every tile of a 4x4 cell owns live state).
    Sgemm,
    /// Jacobi relaxation over SPM work descriptors.
    Jacobi,
}

impl CampaignKernel {
    /// Parses a kernel name.
    pub fn parse(s: &str) -> Option<CampaignKernel> {
        match s.to_ascii_lowercase().as_str() {
            "sgemm" => Some(CampaignKernel::Sgemm),
            "jacobi" => Some(CampaignKernel::Jacobi),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn label(self) -> &'static str {
        match self {
            CampaignKernel::Sgemm => "sgemm",
            CampaignKernel::Jacobi => "jacobi",
        }
    }

    /// Whether the kernel is barrier-free, so an `hb-iss` functional run
    /// executes it to completion and can anchor the golden memory image.
    fn functional_runs_to_completion(self) -> bool {
        matches!(self, CampaignKernel::Sgemm)
    }
}

/// What fault jobs need from their campaign's golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenInfo {
    /// Golden run length.
    pub cycles: u64,
    /// FNV-1a digest of the golden DRAM image.
    pub digest: u64,
}

impl GoldenInfo {
    /// Recovers golden info from a stored golden record.
    pub fn from_record(rec: &JobRecord) -> GoldenInfo {
        GoldenInfo {
            cycles: rec.cycles,
            digest: rec.dram_digest,
        }
    }
}

/// The shared simulation executor. Caches each campaign's golden info in
/// memory (and falls back to the store on resume) so thousands of fault
/// jobs classify against one golden run.
pub struct SimExecutor {
    pool_threads: usize,
    goldens: Mutex<HashMap<String, GoldenInfo>>,
    /// Shared warm-start checkpoints by store key, decoded-once per process.
    warm_blobs: Mutex<HashMap<String, Arc<Vec<u8>>>>,
    /// Cycles between mid-job checkpoints of fault runs; `None` = off.
    ckpt_every: Option<u64>,
    /// Fault-injection hook for the crash/resume CI job: the process exits
    /// hard (code 3) after this many checkpoints have been written.
    crash_after: Option<Arc<AtomicI64>>,
}

impl SimExecutor {
    /// An executor for a pool of `pool_threads` workers. When the pool fans
    /// out, each Machine keeps its tile phase sequential (`threads = 1`) so
    /// total host threads ≈ workers — same policy as
    /// `hb-bench::point_config`. Simulated results are identical either way.
    pub fn new(pool_threads: usize) -> SimExecutor {
        SimExecutor {
            pool_threads: pool_threads.max(1),
            goldens: Mutex::new(HashMap::new()),
            warm_blobs: Mutex::new(HashMap::new()),
            ckpt_every: None,
            crash_after: None,
        }
    }

    /// Enables mid-job checkpointing: every `every` cycles a fault run
    /// snapshots its machine into the store under the job hash, so a
    /// killed worker's next attempt resumes from the last snapshot instead
    /// of restarting. `every == 0` disables.
    #[must_use]
    pub fn with_ckpt_every(mut self, every: u64) -> SimExecutor {
        self.ckpt_every = (every > 0).then_some(every);
        self
    }

    /// Testing hook for the `ckpt-smoke` CI job: kill the whole process
    /// (exit code 3) after `n` mid-job checkpoints have been written —
    /// a deterministic stand-in for a mid-run `kill -9`.
    #[must_use]
    pub fn with_crash_after_ckpts(mut self, n: u64) -> SimExecutor {
        self.crash_after = Some(Arc::new(AtomicI64::new(n as i64)));
        self
    }

    fn machine_config(&self, spec: &JobSpec) -> MachineConfig {
        MachineConfig {
            threads: if self.pool_threads > 1 {
                1
            } else {
                spec.config.threads.max(1)
            },
            ..spec.config.clone()
        }
    }

    /// Fetches (or computes and caches) the golden info for `spec`'s
    /// (kernel, config) — from memory, then the store, then a fresh run.
    fn golden_info(&self, spec: &JobSpec, store: &Store) -> Result<GoldenInfo, JobError> {
        let gspec = golden_spec(&spec.kernel, &spec.config);
        let ghash = gspec.hash();
        if let Some(info) = self.goldens.lock().unwrap().get(&ghash) {
            return Ok(*info);
        }
        let info = if let Some(rec) = store.get(&ghash) {
            GoldenInfo::from_record(&rec)
        } else {
            // A fault job arrived before its golden (e.g. a hand-built
            // manifest without one): run the golden inline. Not stored —
            // the pool owns store writes — but cached for this process.
            let rec = self.run_golden(&gspec)?;
            GoldenInfo::from_record(&rec)
        };
        self.goldens.lock().unwrap().insert(ghash, info);
        Ok(info)
    }

    fn run_golden(&self, spec: &JobSpec) -> Result<JobRecord, JobError> {
        let kernel = campaign_kernel(&spec.kernel)?;
        let cfg = self.machine_config(spec);
        cfg.validate()
            .map_err(|e| JobError::Permanent(format!("invalid config: {e}")))?;
        let cells = cfg.num_cells;
        let (gold_res, gold_mem) = run_once(kernel, &cfg, None, GOLDEN_BUDGET);
        let gold = gold_res.map_err(|e| JobError::Permanent(format!("golden run failed: {e}")))?;
        let gold_digest = digest(&gold_mem, cells);
        let mut checks = vec!["empty-plan-identity"];

        // Bit-identity: installing an *empty* plan must change nothing —
        // the zero-injection hot path is one untaken branch.
        let (empty_res, empty_mem) =
            run_once(kernel, &cfg, Some(&InjectionPlan::default()), GOLDEN_BUDGET);
        let empty =
            empty_res.map_err(|e| JobError::Permanent(format!("empty-plan run failed: {e}")))?;
        if (empty.cycles, empty.core.instrs, digest(&empty_mem, cells))
            != (gold.cycles, gold.core.instrs, gold_digest)
        {
            return Err(JobError::Permanent(
                "empty injection plan is not bit-identical to the uninstrumented run".to_owned(),
            ));
        }

        // Anchor the golden image to the hb-iss functional model where the
        // kernel runs to completion functionally (no barriers).
        if kernel.functional_runs_to_completion() {
            let mut machine = Machine::new(cfg.clone());
            let (program, largs) = prepare(kernel, &mut machine);
            machine.launch(0, &program, &largs);
            machine
                .warmup_functional(100_000_000)
                .map_err(|e| JobError::Permanent(format!("functional golden run failed: {e}")))?;
            machine.flush_all_caches();
            let func_mem = SnapshotDram::from_machine(&machine);
            if !same_memory(&gold_mem, &func_mem, cells) {
                return Err(JobError::Permanent(
                    "cycle-level golden memory diverges from the hb-iss functional run".to_owned(),
                ));
            }
            checks.push("iss-anchor");
        }

        Ok(JobRecord {
            kind: spec.kind.canonical(),
            kernel: spec.kernel.clone(),
            seed: spec.seed,
            outcome: "ok".to_owned(),
            cycles: gold.cycles,
            instrs: gold.core.instrs,
            dram_digest: gold_digest,
            checks: checks.join(","),
            ..JobRecord::default()
        })
    }

    /// Fetches (building and sharing on first use) the post-warmup
    /// checkpoint every run of a `warm:<kernel>` campaign restores from.
    /// Keyed by (kernel, canonical config) in the store's `ckpt/`
    /// directory, so parallel campaigns over the same point share one blob.
    fn warm_blob(
        &self,
        kernel: CampaignKernel,
        cfg: &MachineConfig,
        store: &Store,
    ) -> Result<Arc<Vec<u8>>, JobError> {
        let key = format!(
            "warm-{}-{}",
            kernel.label(),
            crate::spec::fnv1a128_hex(cfg.canonical_text().as_bytes())
        );
        if let Some(blob) = self.warm_blobs.lock().unwrap().get(&key) {
            return Ok(blob.clone());
        }
        // A stored blob that fails to decode (torn write, older format) is
        // ignored and rebuilt — warm checkpoints are pure optimization.
        let stored = store
            .get_ckpt(&key)
            .filter(|bytes| hb_ckpt::decode(bytes).is_ok());
        let blob = Arc::new(match stored {
            Some(bytes) => bytes,
            None => {
                let mut machine = Machine::new(cfg.clone());
                let (program, args) = prepare(kernel, &mut machine);
                machine.launch(0, &program, &args);
                while machine.cycle() < WARM_CYCLES {
                    machine.tick();
                }
                let bytes = hb_ckpt::encode(&machine);
                let _ = store.put_ckpt(&key, &bytes); // best-effort sharing
                bytes
            }
        });
        self.warm_blobs.lock().unwrap().insert(key, blob.clone());
        Ok(blob)
    }

    fn run_fault(&self, spec: &JobSpec, store: &Store) -> Result<JobRecord, JobError> {
        let kernel = campaign_kernel(&spec.kernel)?;
        let cfg = self.machine_config(spec);
        cfg.validate()
            .map_err(|e| JobError::Permanent(format!("invalid config: {e}")))?;
        let cells = cfg.num_cells;
        let gold = self.golden_info(spec, store)?;

        let plan = match &spec.plan {
            PlanSpec::Explicit(plan) => plan.clone(),
            PlanSpec::Seeded { faults } => {
                InjectionPlan::random(spec.seed, *faults as usize, &plan_shape(&cfg, gold.cycles))
            }
            PlanSpec::None => {
                return Err(JobError::Permanent(
                    "fault job without an injection plan".to_owned(),
                ))
            }
        };
        let (site, inj_cycle) = plan
            .injections
            .first()
            .map(|i| (i.site.kind().label().to_owned(), i.cycle))
            .unwrap_or_default();

        let budget = fault_budget(gold.cycles);
        let hash = spec.hash();
        let mut machine = Machine::new(cfg.clone());
        // Mid-job resume: a checkpoint left by a killed attempt carries
        // the whole state — injection plan, cursor and delivered faults
        // included — so the plan must NOT be reinstalled after restore
        // (rewinding the cursor would double-deliver injections).
        let mut resumed = false;
        if self.ckpt_every.is_some() {
            if let Some(blob) = store.get_ckpt(&hash) {
                if hb_ckpt::restore(&mut machine, &blob).is_ok() {
                    resumed = true;
                } else {
                    // Stale or torn: drop it and start over.
                    let _ = store.remove_ckpt(&hash);
                    machine = Machine::new(cfg.clone());
                }
            }
        }
        if !resumed {
            // Warm start only when every injection lands strictly after
            // the warmup horizon (seeded plans always do — `plan_shape`
            // floors at cycle 100; a cold run would already have delivered
            // an injection at cycle <= WARM_CYCLES by the capture point).
            // Explicit early injections fall back to a cold start.
            let warm = spec.kernel.starts_with("warm:")
                && plan.injections.iter().all(|i| i.cycle > WARM_CYCLES);
            if warm {
                let blob = self.warm_blob(kernel, &cfg, store)?;
                hb_ckpt::restore(&mut machine, &blob).map_err(|e| {
                    JobError::Permanent(format!("warm checkpoint restore failed: {e}"))
                })?;
            } else {
                let (program, args) = prepare(kernel, &mut machine);
                machine.launch(0, &program, &args);
            }
            machine.set_injection_plan(&plan);
        }
        if let Some(every) = self.ckpt_every {
            let sink_store = Store::open(store.root())
                .map_err(|e| JobError::Transient(format!("cannot reopen store: {e}")))?;
            let key = hash.clone();
            let crash = self.crash_after.clone();
            machine.set_auto_checkpoint(every, move |m: &mut Machine| {
                let _ = sink_store.put_ckpt(&key, &hb_ckpt::encode(m));
                if let Some(left) = &crash {
                    if left.fetch_sub(1, Ordering::SeqCst) <= 1 {
                        // The ckpt-smoke stand-in for a mid-run kill -9.
                        std::process::exit(3);
                    }
                }
            });
        }

        // Budget in *total* cycles since launch, so a resumed or warm run
        // hangs (or finishes) at exactly the same machine cycle as a cold
        // one — the classification below is bit-identical either way.
        let result = machine.run(budget.saturating_sub(machine.cycle()));
        machine.clear_auto_checkpoint();
        let mut artifacts = String::new();
        if matches!(&result, Err(SimError::Timeout { .. })) {
            // Post-mortem: dump the hung state next to the HangReport so
            // the timeout is replayable (`hb-bench replay --ckpt ...`).
            let key = format!("hang-{hash}");
            if store.put_ckpt(&key, &hb_ckpt::encode(&machine)).is_ok() {
                artifacts = format!("ckpt/{key}.ckpt");
            }
        }
        machine.flush_all_caches();
        let mem = SnapshotDram::from_machine(&machine);
        let total_cycles = machine.cycle();
        let (outcome, cycles, instrs) = match &result {
            Err(SimError::Fault(_)) => ("detected", 0, 0),
            Err(SimError::Timeout { .. }) => ("hang", 0, 0),
            Ok(s) if digest(&mem, cells) == gold.digest => ("masked", total_cycles, s.core.instrs),
            Ok(s) => ("sdc", total_cycles, s.core.instrs),
        };
        // The run finished: its resume checkpoint is dead weight now.
        let _ = store.remove_ckpt(&hash);
        Ok(JobRecord {
            kind: spec.kind.canonical(),
            kernel: spec.kernel.clone(),
            seed: spec.seed,
            outcome: outcome.to_owned(),
            site,
            inj_cycle,
            cycles,
            instrs,
            dram_digest: digest(&mem, cells),
            artifacts,
            ..JobRecord::default()
        })
    }

    fn run_ablation(&self, spec: &JobSpec, size: &str) -> Result<JobRecord, JobError> {
        let size = parse_size(size)?;
        let (name, variant) = match spec.kernel.split_once('@') {
            Some((n, v)) => (n, Some(v)),
            None => (spec.kernel.as_str(), None),
        };
        let bench: Box<dyn hb_kernels::Benchmark> = match variant {
            Some("blocked") if name.eq_ignore_ascii_case("SGEMM") => Box::new(Sgemm::blocked()),
            Some(v) => {
                return Err(JobError::Permanent(format!(
                    "unknown kernel variant {v:?} for {name:?}"
                )))
            }
            None => hb_kernels::suite()
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(name))
                .ok_or_else(|| JobError::Permanent(format!("unknown kernel {name:?}")))?,
        };
        let cfg = self.machine_config(spec);
        cfg.validate()
            .map_err(|e| JobError::Permanent(format!("invalid config: {e}")))?;
        let stats = bench
            .run(&cfg, size)
            .map_err(|e| JobError::Permanent(format!("{} failed: {e}", bench.name())))?;
        Ok(JobRecord {
            kind: spec.kind.canonical(),
            kernel: spec.kernel.clone(),
            seed: spec.seed,
            outcome: "ok".to_owned(),
            cycles: stats.cycles,
            instrs: stats.core.instrs,
            ..JobRecord::default()
        })
    }

    /// One profiled benchmark run: any suite kernel at a size class with
    /// guest-code profiling enabled. The record carries cycles (identical
    /// to an unprofiled run — profiling is observation-only) plus the
    /// top-5 hot basic blocks in `hb_prof::compact_top` form, which the
    /// report renders as a per-kernel hot-block section.
    fn run_profile(&self, spec: &JobSpec, size: &str) -> Result<JobRecord, JobError> {
        let size = parse_size(size)?;
        let bench = hb_kernels::suite()
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(&spec.kernel))
            .ok_or_else(|| JobError::Permanent(format!("unknown kernel {:?}", spec.kernel)))?;
        let cfg = MachineConfig {
            profile: true,
            ..self.machine_config(spec)
        };
        cfg.validate()
            .map_err(|e| JobError::Permanent(format!("invalid config: {e}")))?;
        let (scope, profiles) = hb_prof::attach();
        let stats = bench
            .run(&cfg, size)
            .map_err(|e| JobError::Permanent(format!("{} failed: {e}", bench.name())))?;
        drop(scope);
        let profiles = profiles.lock().unwrap();
        let run = profiles
            .last()
            .ok_or_else(|| JobError::Permanent(format!("{} captured no profile", bench.name())))?;
        let analysis = hb_prof::Analysis::analyze(bench.name(), run);
        Ok(JobRecord {
            kind: spec.kind.canonical(),
            kernel: spec.kernel.clone(),
            seed: spec.seed,
            outcome: "ok".to_owned(),
            cycles: stats.cycles,
            instrs: stats.core.instrs,
            checks: format!("retired={},stalled={}", analysis.retired, analysis.stalled),
            profile: hb_prof::compact_top(&analysis, 5),
            ..JobRecord::default()
        })
    }

    /// Two-sided race check for one suite kernel: the static phase-conflict
    /// pass over the program plus a full benchmark run (golden-validating)
    /// under the dynamic epoch sanitizer. Finding counts land in `checks`
    /// as `static=N,dynamic=M`; any finding makes the outcome `racy`.
    fn run_race_check(&self, spec: &JobSpec, size: &str) -> Result<JobRecord, JobError> {
        let size = parse_size(size)?;
        let (bench, program) = hb_race::parameterization(&spec.kernel)
            .ok_or_else(|| JobError::Permanent(format!("unknown kernel {:?}", spec.kernel)))?;
        let cfg = MachineConfig {
            race_check: true,
            ..self.machine_config(spec)
        };
        cfg.validate()
            .map_err(|e| JobError::Permanent(format!("invalid config: {e}")))?;
        let statics = hb_race::static_conflicts(&program, &cfg);
        let scope = hb_core::collect_races();
        let stats = bench
            .run(&cfg, size)
            .map_err(|e| JobError::Permanent(format!("{} failed: {e}", bench.name())))?;
        let races = scope.take();
        let clean = statics.is_empty() && races.is_empty();
        Ok(JobRecord {
            kind: spec.kind.canonical(),
            kernel: spec.kernel.clone(),
            seed: spec.seed,
            outcome: if clean { "clean" } else { "racy" }.to_owned(),
            cycles: stats.cycles,
            instrs: stats.core.instrs,
            checks: format!("static={},dynamic={}", statics.len(), races.len()),
            ..JobRecord::default()
        })
    }
}

impl Executor for SimExecutor {
    fn run(&self, spec: &JobSpec, store: &Store) -> Result<JobRecord, JobError> {
        match &spec.kind {
            JobKind::Golden => self.run_golden(spec),
            JobKind::Fault => self.run_fault(spec, store),
            JobKind::Ablation { size } => self.run_ablation(spec, size),
            JobKind::RaceCheck { size } => self.run_race_check(spec, size),
            JobKind::Profile { size } => self.run_profile(spec, size),
        }
    }
}

/// Cycle budget for golden runs (generous; a golden that cannot finish in
/// this is a campaign configuration error).
const GOLDEN_BUDGET: u64 = 10_000_000;

/// Cycles simulated before capturing a `warm:<kernel>` shared checkpoint.
/// Must stay below the `plan_shape` injection floor (cycle 100) so seeded
/// plans always qualify for a warm start.
const WARM_CYCLES: u64 = 64;

/// The injected-run budget: leaves room for stall windows and retransmits
/// while still bounding frozen-tile hangs.
fn fault_budget(golden_cycles: u64) -> u64 {
    golden_cycles * 4 + 20_000
}

/// The fault-site shape drawn over: the machine geometry, with faults
/// landing in the golden run's active cycle range.
fn plan_shape(cfg: &MachineConfig, golden_cycles: u64) -> PlanShape {
    PlanShape {
        cells: cfg.num_cells,
        dim: (cfg.cell_dim.x, cfg.cell_dim.y),
        spm_words: (cfg.spm_bytes / 4).min(u32::from(u16::MAX)) as u16,
        icache_lines: (cfg.icache_bytes / cfg.line_bytes).min(u32::from(u16::MAX)) as u16,
        cycles: (100, (golden_cycles * 3 / 4).max(200)),
    }
}

/// The golden [`JobSpec`] every fault job of a (kernel, config) campaign
/// classifies against.
pub fn golden_spec(kernel: &str, config: &MachineConfig) -> JobSpec {
    JobSpec {
        kind: JobKind::Golden,
        kernel: kernel.to_owned(),
        seed: 0,
        plan: PlanSpec::None,
        config: config.clone(),
        label: "golden".to_owned(),
    }
}

/// Resolves a campaign kernel name. A `warm:` prefix selects the shared
/// warm-checkpoint start for fault jobs and is otherwise transparent: the
/// simulated kernel, inputs and classification are identical.
fn campaign_kernel(name: &str) -> Result<CampaignKernel, JobError> {
    let bare = name.strip_prefix("warm:").unwrap_or(name);
    CampaignKernel::parse(bare)
        .ok_or_else(|| JobError::Permanent(format!("unknown campaign kernel {name:?}")))
}

fn parse_size(s: &str) -> Result<SizeClass, JobError> {
    match s {
        "tiny" => Ok(SizeClass::Tiny),
        "small" => Ok(SizeClass::Small),
        "large" => Ok(SizeClass::Large),
        _ => Err(JobError::Permanent(format!("unknown size class {s:?}"))),
    }
}

/// Renders a [`SizeClass`] as its canonical token.
pub fn size_token(size: SizeClass) -> &'static str {
    match size {
        SizeClass::Tiny => "tiny",
        SizeClass::Small => "small",
        SizeClass::Large => "large",
    }
}

/// Builds the machine, allocates and fills the kernel inputs, and returns
/// the launch (program + argument words). Input generation is seeded, so
/// every run of a campaign sees identical initial DRAM.
fn prepare(kernel: CampaignKernel, machine: &mut Machine) -> (Arc<Program>, Vec<u32>) {
    let (nx, ny) = {
        let d = machine.config().cell_dim;
        (d.x as usize, d.y as usize)
    };
    let cell = machine.cell_mut(0);
    match kernel {
        CampaignKernel::Sgemm => {
            // 16 output blocks: every tile of a 4x4 cell owns live state.
            let (m, k, n) = (32usize, 16usize, 32usize);
            let a_host = gen::dense_matrix(m, k, 0xA);
            let b_host = gen::dense_matrix(k, n, 0xB);
            let a_dev = cell.alloc((m * k * 4) as u32, 64);
            let b_dev = cell.alloc((k * n * 4) as u32, 64);
            let c_dev = cell.alloc((m * n * 4) as u32, 64);
            cell.dram_mut().write_f32_slice(a_dev, &a_host);
            cell.dram_mut().write_f32_slice(b_dev, &b_host);
            // The SPM-blocked variant: operand blocks live in the
            // scratchpad, so SPM faults have architectural state to hit.
            (
                Arc::new(Sgemm::program_blocked()),
                vec![
                    pgas::local_dram(a_dev),
                    pgas::local_dram(b_dev),
                    pgas::local_dram(c_dev),
                    m as u32,
                    k as u32,
                    n as u32,
                ],
            )
        }
        CampaignKernel::Jacobi => {
            let (z, steps) = (32usize, 2u32);
            let init = gen::dense_matrix(nx * ny, z, 0x1AC0B1);
            let grid = cell.alloc((nx * ny * z * 4) as u32, 64);
            cell.dram_mut().write_f32_slice(grid, &init);
            (
                Arc::new(Jacobi::program()),
                vec![pgas::local_dram(grid), z as u32, steps],
            )
        }
    }
}

/// One full simulation: fresh machine, same seeded inputs, optional
/// injection plan. Returns the run result and the flushed DRAM image.
fn run_once(
    kernel: CampaignKernel,
    cfg: &MachineConfig,
    plan: Option<&InjectionPlan>,
    budget: u64,
) -> (Result<hb_core::RunSummary, SimError>, SnapshotDram) {
    let mut machine = Machine::new(cfg.clone());
    let (program, args) = prepare(kernel, &mut machine);
    machine.launch(0, &program, &args);
    if let Some(plan) = plan {
        machine.set_injection_plan(plan);
    }
    let result = machine.run(budget);
    machine.flush_all_caches();
    (result, SnapshotDram::from_machine(&machine))
}

/// FNV-1a digest over every Cell's DRAM image.
pub fn digest(snap: &SnapshotDram, cells: u8) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in 0..cells {
        for &b in snap.cell(c) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn same_memory(a: &SnapshotDram, b: &SnapshotDram, cells: u8) -> bool {
    (0..cells).all(|c| a.cell(c) == b.cell(c))
}
