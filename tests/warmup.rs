//! Functional fast-forward (`Machine::warmup_functional`): kernel init
//! phases execute on the `hb-iss` golden model at interpreter speed, the
//! resulting architectural state is injected back into the tiles, and the
//! cycle-level simulation takes over — producing the same final memory
//! image as a pure cycle-level run.

use hammerblade::core::{pgas, CellDim, Machine, MachineConfig};
use hammerblade::kernels::{Jacobi, Sgemm};
use hammerblade::rng::Rng;
use hammerblade::workloads::{gen, golden};
use std::sync::Arc;

fn config(x: u8, y: u8) -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x, y },
        ..MachineConfig::baseline_16x8()
    }
}

/// Builds a small SGEMM machine; returns (machine, c_dev, expect).
fn sgemm_machine(cfg: &MachineConfig) -> (Machine, u32, Vec<f32>) {
    let (m, k, n) = (8usize, 16usize, 8usize);
    let a_host = gen::dense_matrix(m, k, 0xA);
    let b_host = gen::dense_matrix(k, n, 0xB);
    let expect = golden::sgemm(m, k, n, &a_host, &b_host);

    let mut machine = Machine::new(cfg.clone());
    let cell = machine.cell_mut(0);
    let a_dev = cell.alloc((m * k * 4) as u32, 64);
    let b_dev = cell.alloc((k * n * 4) as u32, 64);
    let c_dev = cell.alloc((m * n * 4) as u32, 64);
    cell.dram_mut().write_f32_slice(a_dev, &a_host);
    cell.dram_mut().write_f32_slice(b_dev, &b_host);
    let program = Arc::new(Sgemm::program());
    machine.launch(
        0,
        &program,
        &[
            pgas::local_dram(a_dev),
            pgas::local_dram(b_dev),
            pgas::local_dram(c_dev),
            m as u32,
            k as u32,
            n as u32,
        ],
    );
    (machine, c_dev, expect)
}

/// SGEMM has no barrier, so a generous warmup budget fast-forwards the
/// whole kernel functionally; the cycle model then just retires the final
/// `ecall`. The result must still validate bit-for-bit against golden.
#[test]
fn warmup_can_fast_forward_a_whole_barrier_free_kernel() {
    let cfg = config(2, 2);
    let (mut machine, c_dev, expect) = sgemm_machine(&cfg);
    let report = machine.warmup_functional(1_000_000).unwrap();
    assert_eq!(report.tiles, 4);
    assert_eq!(report.finished, 4, "every tile must park at its ecall");
    assert!(report.instrs > 400, "fast-forward must execute real work");

    let summary = machine.run(1_000_000).unwrap();
    // Only the parked ecalls (plus launch latency) remain for the cycle
    // model — far less than the thousands of cycles the kernel itself takes.
    assert!(
        summary.cycles < 200,
        "warmup must have consumed the kernel work"
    );
    machine.cell_mut(0).flush_caches();
    let got = machine.cell(0).dram().read_f32_slice(c_dev, expect.len());
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert!(
            (g - e).abs() <= e.abs() * 1e-3 + 1e-4,
            "C[{i}]: warmup {g} vs golden {e}"
        );
    }
}

/// The warmup result is bit-identical to a pure cycle-level run of the
/// same kernel (the ISS mirrors tile FP semantics exactly).
#[test]
fn warmup_matches_pure_cycle_simulation_bit_for_bit() {
    let cfg = config(2, 2);

    let (mut pure, c_pure, _) = sgemm_machine(&cfg);
    pure.run(10_000_000).unwrap();
    pure.cell_mut(0).flush_caches();
    let len = 8 * 8;
    let pure_bits = pure.cell(0).dram().read_u32_slice(c_pure, len);

    let (mut warm, c_warm, _) = sgemm_machine(&cfg);
    warm.warmup_functional(1_000_000).unwrap();
    warm.run(1_000_000).unwrap();
    warm.cell_mut(0).flush_caches();
    let warm_bits = warm.cell(0).dram().read_u32_slice(c_warm, len);

    assert_eq!(
        pure_bits, warm_bits,
        "warmup must not change the computed result"
    );
}

/// Jacobi's init phase (column copy-in) fast-forwards up to the first
/// barrier; the stencil steps then run cycle-accurately and must still
/// validate against the golden model.
#[test]
fn warmup_stops_at_the_first_barrier_and_cycle_sim_completes() {
    let cfg = config(4, 4);
    let (nx, ny, nz, steps) = (4usize, 4usize, 32usize, 2u32);
    let mut init = vec![0f32; nx * ny * nz];
    let mut rng = Rng::seed_from_u64(0x0AC1);
    for v in &mut init {
        *v = rng.range_f32(-1.0, 1.0);
    }
    let mut expect = init.clone();
    for _ in 0..steps {
        expect = golden::jacobi_step(nx, ny, nz, &expect);
    }

    let mut machine = Machine::new(cfg);
    let cell = machine.cell_mut(0);
    let grid = cell.alloc((nx * ny * nz * 4) as u32, 64);
    cell.dram_mut().write_f32_slice(grid, &init);
    let program = Arc::new(Jacobi::program());
    machine.launch(0, &program, &[pgas::local_dram(grid), nz as u32, steps]);

    let report = machine.warmup_functional(1_000_000).unwrap();
    assert_eq!(
        report.at_barrier, 16,
        "all 16 tiles must park at the copy-in barrier"
    );
    assert_eq!(report.finished, 0);

    machine.run(10_000_000).unwrap();
    machine.cell_mut(0).flush_caches();
    let got = machine.cell(0).dram().read_f32_slice(grid, expect.len());
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert!(
            (g - e).abs() <= 1e-4 + e.abs() * 1e-4,
            "grid[{i}]: warmup {g} vs golden {e}"
        );
    }
}
