//! Versioned, crash-safe machine checkpoints.
//!
//! [`hb_core::Machine::save_checkpoint`] produces a deterministic byte
//! payload of the complete simulated state; this crate owns everything
//! around that payload — the on-disk file format, its integrity hash, the
//! version/config compatibility checks on restore, and the atomic write
//! discipline that makes a checkpoint either fully present or absent after
//! a crash.
//!
//! # File format (`HBCKPT01`)
//!
//! ```text
//! offset  size  field
//! 0       8     magic "HBCKPT01"
//! 8       4     format version (u32 LE, currently 1)
//! 12      8+n   machine config canonical text (u64 LE length + UTF-8)
//! ..      8     machine cycle at capture (u64 LE)
//! ..      8+m   machine payload (u64 LE length + bytes)
//! ..      16    FNV-1a 128-bit hash of every preceding byte (LE)
//! ```
//!
//! The config travels as [`hb_core::MachineConfig::canonical_text`] — the
//! same canonical form job hashing uses — so "same config" means exactly
//! what it means everywhere else in the stack: every simulated-behavior
//! knob equal, host-only knobs (threads, event scheduling, profiling) free
//! to differ. That is what makes a checkpoint taken under `threads = 4`
//! restorable under `threads = 1` with bit-identical continuation.
//!
//! Restore never panics: a wrong magic, an unknown version, a config
//! mismatch, a hash mismatch or a malformed payload each map to a distinct
//! [`CkptError`] variant.

use hb_core::{Machine, MachineConfig};
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Current checkpoint format version.
pub const CKPT_VERSION: u32 = 1;

/// File magic; the trailing digits track the container layout (the payload
/// inside is versioned separately by `CKPT_VERSION`).
pub const MAGIC: [u8; 8] = *b"HBCKPT01";

/// Why a checkpoint could not be written or restored.
#[derive(Debug)]
pub enum CkptError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not one this binary reads.
    Version {
        /// Version found in the file.
        found: u32,
    },
    /// The checkpoint was captured under a different machine configuration
    /// (canonical texts differ); restoring it would silently misinterpret
    /// geometry-dependent state.
    ConfigMismatch {
        /// Canonical config text stored in the checkpoint.
        expected: String,
        /// Canonical config text of the machine restoring it.
        got: String,
    },
    /// The integrity hash does not match the contents (torn or tampered
    /// file).
    Corrupt,
    /// The container framing or the machine payload does not decode.
    Malformed(hb_mem::SnapError),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::Version { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (this binary reads {CKPT_VERSION})"
                )
            }
            CkptError::ConfigMismatch { .. } => {
                write!(
                    f,
                    "checkpoint was captured under a different machine configuration"
                )
            }
            CkptError::Corrupt => write!(f, "checkpoint hash mismatch (corrupt file)"),
            CkptError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> CkptError {
        CkptError::Io(e)
    }
}

impl From<hb_mem::SnapError> for CkptError {
    fn from(e: hb_mem::SnapError) -> CkptError {
        CkptError::Malformed(e)
    }
}

/// A decoded checkpoint container, not yet applied to a machine.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Machine cycle at capture.
    pub cycle: u64,
    /// Canonical config text the capture ran under.
    pub config_text: String,
    /// The machine payload ([`Machine::save_checkpoint`] bytes).
    pub payload: Vec<u8>,
}

impl Checkpoint {
    /// Parses the config the checkpoint was captured under.
    ///
    /// # Errors
    ///
    /// The canonical-text parse error, verbatim.
    pub fn config(&self) -> Result<MachineConfig, String> {
        MachineConfig::from_canonical_text(&self.config_text)
    }
}

/// 128-bit FNV-1a over `bytes`.
fn fnv1a128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Encodes the machine's current state as complete checkpoint-file bytes.
/// Deterministic: the same machine state always encodes to the same bytes,
/// so callers may content-address checkpoints by hashing the result.
pub fn encode(machine: &Machine) -> Vec<u8> {
    let payload = machine.save_checkpoint();
    let mut out = Vec::with_capacity(payload.len() + 256);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    let cfg_text = machine.config().canonical_text();
    out.extend_from_slice(&(cfg_text.len() as u64).to_le_bytes());
    out.extend_from_slice(cfg_text.as_bytes());
    out.extend_from_slice(&machine.cycle().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let hash = fnv1a128(&out);
    out.extend_from_slice(&hash.to_le_bytes());
    out
}

/// Decodes and integrity-checks checkpoint-file bytes without applying
/// them to a machine.
///
/// # Errors
///
/// [`CkptError::BadMagic`], [`CkptError::Version`], [`CkptError::Corrupt`]
/// or [`CkptError::Malformed`]; never a panic.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
    use hb_mem::SnapError;
    if bytes.len() < MAGIC.len() + 4 + 16 {
        if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        return Err(CkptError::Malformed(SnapError::Eof));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 16);
    let stored = u128::from_le_bytes(tail.try_into().unwrap());
    // The version check precedes the hash check: a future format may hash
    // differently, and "unsupported version" is the more actionable error.
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != CKPT_VERSION {
        return Err(CkptError::Version { found: version });
    }
    if fnv1a128(body) != stored {
        return Err(CkptError::Corrupt);
    }
    let mut r = hb_mem::SnapReader::new(&body[12..]);
    let config_text = r.str()?;
    let cycle = r.u64()?;
    let payload = r.bytes()?;
    r.finish()?;
    Ok(Checkpoint {
        cycle,
        config_text,
        payload,
    })
}

/// Restores a decoded checkpoint into `machine`, verifying the config
/// first. Returns the restored cycle.
///
/// # Errors
///
/// [`CkptError::ConfigMismatch`] when the canonical config texts differ,
/// [`CkptError::Malformed`] when the payload does not decode (the machine
/// must then be discarded — it may be partially overwritten).
pub fn apply(machine: &mut Machine, ckpt: &Checkpoint) -> Result<u64, CkptError> {
    let got = machine.config().canonical_text();
    if got != ckpt.config_text {
        return Err(CkptError::ConfigMismatch {
            expected: ckpt.config_text.clone(),
            got,
        });
    }
    machine.restore_checkpoint(&ckpt.payload)?;
    Ok(ckpt.cycle)
}

/// [`decode`] + [`apply`] in one step.
///
/// # Errors
///
/// Any [`CkptError`].
pub fn restore(machine: &mut Machine, bytes: &[u8]) -> Result<u64, CkptError> {
    apply(machine, &decode(bytes)?)
}

/// Writes the machine's checkpoint to `path` crash-safely: the bytes land
/// in a `.tmp` sibling, are fsynced, renamed over `path`, and the parent
/// directory is fsynced so the rename itself is durable — after a crash
/// the path holds either the complete new checkpoint or whatever was there
/// before, never a torn file.
///
/// # Errors
///
/// [`CkptError::Io`] on any file operation failure.
pub fn save_to_file(machine: &Machine, path: &Path) -> Result<(), CkptError> {
    let bytes = encode(machine);
    write_atomic(path, &bytes)?;
    Ok(())
}

/// Reads, verifies and applies a checkpoint file. Returns the restored
/// cycle.
///
/// # Errors
///
/// Any [`CkptError`].
pub fn restore_from_file(machine: &mut Machine, path: &Path) -> Result<u64, CkptError> {
    let bytes = std::fs::read(path)?;
    restore(machine, &bytes)
}

/// Atomic tmp+rename+dir-fsync write (the checkpoint durability
/// discipline; `hb-serve`'s store follows the same contract).
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // rename() alone only orders the directory update in the page cache;
    // the parent directory must be fsynced for the new name to survive a
    // power cut.
    if let Some(dir) = dir {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::{CellDim, MachineConfig};

    fn tiny_cfg() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 2, y: 2 },
            threads: 1,
            ..MachineConfig::baseline_16x8()
        }
    }

    fn ticked_machine(cycles: u64) -> Machine {
        let mut m = Machine::new(tiny_cfg());
        for _ in 0..cycles {
            m.tick();
        }
        m
    }

    #[test]
    fn encode_decode_apply_round_trips() {
        let m = ticked_machine(37);
        let bytes = encode(&m);
        let ckpt = decode(&bytes).unwrap();
        assert_eq!(ckpt.cycle, 37);
        assert_eq!(ckpt.config_text, tiny_cfg().canonical_text());
        let mut twin = Machine::new(tiny_cfg());
        assert_eq!(apply(&mut twin, &ckpt).unwrap(), 37);
        assert_eq!(twin.cycle(), 37);
        // Re-encoding the restored machine reproduces the bytes exactly.
        assert_eq!(encode(&twin), bytes);
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = encode(&ticked_machine(12));
        let b = encode(&ticked_machine(12));
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_is_clean() {
        assert!(matches!(decode(b"NOTACKPT"), Err(CkptError::BadMagic)));
        assert!(matches!(decode(b"HB"), Err(CkptError::Malformed(_))));
        let mut bytes = encode(&ticked_machine(1));
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(CkptError::BadMagic)));
    }

    #[test]
    fn unknown_version_is_clean() {
        let mut bytes = encode(&ticked_machine(1));
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(CkptError::Version { found: 99 })
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = encode(&ticked_machine(5));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(decode(&bytes), Err(CkptError::Corrupt)));
        // Truncation inside the hash tail is Malformed/Corrupt, not a panic.
        let short = &encode(&ticked_machine(5))[..20];
        assert!(decode(short).is_err());
    }

    #[test]
    fn config_mismatch_is_clean() {
        let bytes = encode(&ticked_machine(9));
        let other_cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 2 },
            ..tiny_cfg()
        };
        let mut other = Machine::new(other_cfg);
        assert!(matches!(
            restore(&mut other, &bytes),
            Err(CkptError::ConfigMismatch { .. })
        ));
        // Host-only knobs are allowed to differ.
        let host_cfg = MachineConfig {
            threads: 4,
            event_core: true,
            ..tiny_cfg()
        };
        let mut host = Machine::new(host_cfg);
        assert_eq!(restore(&mut host, &bytes).unwrap(), 9);
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join(format!("hb-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("snap.ckpt");
        let m = ticked_machine(21);
        save_to_file(&m, &path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp must be renamed away"
        );
        let mut twin = Machine::new(tiny_cfg());
        assert_eq!(restore_from_file(&mut twin, &path).unwrap(), 21);
        assert_eq!(encode(&twin), encode(&m));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
