//! The [`Assembler`] builder: instruction emitters, labels and pseudo-ops.

use crate::program::Program;
use crate::AsmError;
use hb_isa::{
    AmoOp, BranchOp, FmaOp, FpCmp, FpOp, Fpr, Gpr, Instr, LoadWidth, OpImmOp, OpOp, StoreWidth,
    INSTR_BYTES,
};

/// A code location that can be branched or jumped to.
///
/// Create with [`Assembler::new_label`], place with [`Assembler::bind`].
/// Labels may be referenced before they are bound (forward branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

/// One emitted item: either a finished instruction or one whose PC-relative
/// offset awaits label resolution.
#[derive(Debug, Clone, Copy)]
enum Item {
    Fixed(Instr),
    Branch {
        op: BranchOp,
        rs1: Gpr,
        rs2: Gpr,
        target: Label,
    },
    Jal {
        rd: Gpr,
        target: Label,
    },
}

/// Builder for RV32IMAF programs. See the [crate docs](crate) for an example.
///
/// All emit methods return `&mut Self` so instructions can be chained.
#[derive(Debug, Default)]
pub struct Assembler {
    items: Vec<Item>,
    /// label id -> instruction index it is bound to.
    labels: Vec<Option<usize>>,
    redefined: Option<usize>,
}

macro_rules! op_methods {
    ($($(#[$meta:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$meta])*
            pub fn $name(&mut self, rd: Gpr, rs1: Gpr, rs2: Gpr) -> &mut Self {
                self.emit(Instr::Op { op: $op, rd, rs1, rs2 })
            }
        )*
    };
}

macro_rules! op_imm_methods {
    ($($(#[$meta:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$meta])*
            pub fn $name(&mut self, rd: Gpr, rs1: Gpr, imm: i32) -> &mut Self {
                self.emit(Instr::OpImm { op: $op, rd, rs1, imm })
            }
        )*
    };
}

macro_rules! branch_methods {
    ($($(#[$meta:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$meta])*
            pub fn $name(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
                self.items.push(Item::Branch { op: $op, rs1, rs2, target });
                self
            }
        )*
    };
}

macro_rules! amo_methods {
    ($($(#[$meta:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$meta])*
            /// Operand order follows assembly syntax: `rd, rs2, (rs1)`.
            pub fn $name(&mut self, rd: Gpr, rs2: Gpr, rs1: Gpr) -> &mut Self {
                self.emit(Instr::Amo { op: $op, rd, rs1, rs2, aq: false, rl: false })
            }
        )*
    };
}

macro_rules! fp_op_methods {
    ($($(#[$meta:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$meta])*
            pub fn $name(&mut self, rd: Fpr, rs1: Fpr, rs2: Fpr) -> &mut Self {
                self.emit(Instr::FpOp { op: $op, rd, rs1, rs2 })
            }
        )*
    };
}

macro_rules! fma_methods {
    ($($(#[$meta:meta])* $name:ident => $op:expr;)*) => {
        $(
            $(#[$meta])*
            pub fn $name(&mut self, rd: Fpr, rs1: Fpr, rs2: Fpr, rs3: Fpr) -> &mut Self {
                self.emit(Instr::Fma { op: $op, rd, rs1, rs2, rs3 })
            }
        )*
    };
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Emits an already-constructed [`Instr`].
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Fixed(instr));
        self
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        if self.labels[label.0].is_some() {
            self.redefined.get_or_insert(label.0);
        }
        self.labels[label.0] = Some(self.items.len());
        self
    }

    /// Allocates and immediately binds a label (for backward branches).
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    // ---- RV32I register-register and register-immediate ----

    op_methods! {
        /// `add rd, rs1, rs2`
        add => OpOp::Add;
        /// `sub rd, rs1, rs2`
        sub => OpOp::Sub;
        /// `sll rd, rs1, rs2`
        sll => OpOp::Sll;
        /// `slt rd, rs1, rs2`
        slt => OpOp::Slt;
        /// `sltu rd, rs1, rs2`
        sltu => OpOp::Sltu;
        /// `xor rd, rs1, rs2`
        xor => OpOp::Xor;
        /// `srl rd, rs1, rs2`
        srl => OpOp::Srl;
        /// `sra rd, rs1, rs2`
        sra => OpOp::Sra;
        /// `or rd, rs1, rs2`
        or => OpOp::Or;
        /// `and rd, rs1, rs2`
        and => OpOp::And;
        /// `mul rd, rs1, rs2` (M extension, 2-cycle latency on HB)
        mul => OpOp::Mul;
        /// `mulh rd, rs1, rs2`
        mulh => OpOp::Mulh;
        /// `mulhsu rd, rs1, rs2`
        mulhsu => OpOp::Mulhsu;
        /// `mulhu rd, rs1, rs2`
        mulhu => OpOp::Mulhu;
        /// `div rd, rs1, rs2` (iterative divider)
        div => OpOp::Div;
        /// `divu rd, rs1, rs2`
        divu => OpOp::Divu;
        /// `rem rd, rs1, rs2`
        rem => OpOp::Rem;
        /// `remu rd, rs1, rs2`
        remu => OpOp::Remu;
    }

    op_imm_methods! {
        /// `addi rd, rs1, imm`
        addi => OpImmOp::Addi;
        /// `slti rd, rs1, imm`
        slti => OpImmOp::Slti;
        /// `sltiu rd, rs1, imm`
        sltiu => OpImmOp::Sltiu;
        /// `xori rd, rs1, imm`
        xori => OpImmOp::Xori;
        /// `ori rd, rs1, imm`
        ori => OpImmOp::Ori;
        /// `andi rd, rs1, imm`
        andi => OpImmOp::Andi;
        /// `slli rd, rs1, shamt`
        slli => OpImmOp::Slli;
        /// `srli rd, rs1, shamt`
        srli => OpImmOp::Srli;
        /// `srai rd, rs1, shamt`
        srai => OpImmOp::Srai;
    }

    /// `lui rd, imm20`
    pub fn lui(&mut self, rd: Gpr, imm: i32) -> &mut Self {
        self.emit(Instr::Lui { rd, imm })
    }

    /// `auipc rd, imm20`
    pub fn auipc(&mut self, rd: Gpr, imm: i32) -> &mut Self {
        self.emit(Instr::Auipc { rd, imm })
    }

    // ---- Loads and stores ----

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Load {
            width: LoadWidth::W,
            rd,
            rs1,
            offset,
        })
    }

    /// `lh rd, offset(rs1)`
    pub fn lh(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Load {
            width: LoadWidth::H,
            rd,
            rs1,
            offset,
        })
    }

    /// `lhu rd, offset(rs1)`
    pub fn lhu(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Load {
            width: LoadWidth::Hu,
            rd,
            rs1,
            offset,
        })
    }

    /// `lb rd, offset(rs1)`
    pub fn lb(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Load {
            width: LoadWidth::B,
            rd,
            rs1,
            offset,
        })
    }

    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Load {
            width: LoadWidth::Bu,
            rd,
            rs1,
            offset,
        })
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Store {
            width: StoreWidth::W,
            rs1,
            rs2,
            offset,
        })
    }

    /// `sh rs2, offset(rs1)`
    pub fn sh(&mut self, rs2: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Store {
            width: StoreWidth::H,
            rs1,
            rs2,
            offset,
        })
    }

    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Store {
            width: StoreWidth::B,
            rs1,
            rs2,
            offset,
        })
    }

    /// `flw rd, offset(rs1)`
    pub fn flw(&mut self, rd: Fpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Flw { rd, rs1, offset })
    }

    /// `fsw rs2, offset(rs1)`
    pub fn fsw(&mut self, rs2: Fpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Fsw { rs1, rs2, offset })
    }

    // ---- Control flow ----

    branch_methods! {
        /// `beq rs1, rs2, target`
        beq => BranchOp::Eq;
        /// `bne rs1, rs2, target`
        bne => BranchOp::Ne;
        /// `blt rs1, rs2, target`
        blt => BranchOp::Lt;
        /// `bge rs1, rs2, target`
        bge => BranchOp::Ge;
        /// `bltu rs1, rs2, target`
        bltu => BranchOp::Ltu;
        /// `bgeu rs1, rs2, target`
        bgeu => BranchOp::Geu;
    }

    /// `beqz rs1, target` — pseudo for `beq rs1, zero, target`.
    pub fn beqz(&mut self, rs1: Gpr, target: Label) -> &mut Self {
        self.beq(rs1, Gpr::Zero, target)
    }

    /// `bnez rs1, target` — pseudo for `bne rs1, zero, target`.
    pub fn bnez(&mut self, rs1: Gpr, target: Label) -> &mut Self {
        self.bne(rs1, Gpr::Zero, target)
    }

    /// `bgt rs1, rs2, target` — pseudo for `blt rs2, rs1, target`.
    pub fn bgt(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.blt(rs2, rs1, target)
    }

    /// `ble rs1, rs2, target` — pseudo for `bge rs2, rs1, target`.
    pub fn ble(&mut self, rs1: Gpr, rs2: Gpr, target: Label) -> &mut Self {
        self.bge(rs2, rs1, target)
    }

    /// `jal rd, target`
    pub fn jal(&mut self, rd: Gpr, target: Label) -> &mut Self {
        self.items.push(Item::Jal { rd, target });
        self
    }

    /// `j target` — pseudo for `jal zero, target`.
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.jal(Gpr::Zero, target)
    }

    /// `call target` — pseudo for `jal ra, target`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.jal(Gpr::Ra, target)
    }

    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: Gpr, rs1: Gpr, offset: i32) -> &mut Self {
        self.emit(Instr::Jalr { rd, rs1, offset })
    }

    /// `ret` — pseudo for `jalr zero, 0(ra)`.
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(Gpr::Zero, Gpr::Ra, 0)
    }

    // ---- System ----

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::NOP)
    }

    /// `fence` — drains the remote-request scoreboard on HB.
    pub fn fence(&mut self) -> &mut Self {
        self.emit(Instr::Fence)
    }

    /// `ecall` — signals "tile finished" to the HB simulator.
    pub fn ecall(&mut self) -> &mut Self {
        self.emit(Instr::Ecall)
    }

    /// `ebreak`
    pub fn ebreak(&mut self) -> &mut Self {
        self.emit(Instr::Ebreak)
    }

    // ---- Atomics ----

    amo_methods! {
        /// `amoswap.w rd, rs2, (rs1)`
        amoswap => AmoOp::Swap;
        /// `amoadd.w rd, rs2, (rs1)`
        amoadd => AmoOp::Add;
        /// `amoxor.w rd, rs2, (rs1)`
        amoxor => AmoOp::Xor;
        /// `amoand.w rd, rs2, (rs1)`
        amoand => AmoOp::And;
        /// `amoor.w rd, rs2, (rs1)`
        amoor => AmoOp::Or;
        /// `amomin.w rd, rs2, (rs1)`
        amomin => AmoOp::Min;
        /// `amomax.w rd, rs2, (rs1)`
        amomax => AmoOp::Max;
        /// `amominu.w rd, rs2, (rs1)`
        amominu => AmoOp::Minu;
        /// `amomaxu.w rd, rs2, (rs1)`
        amomaxu => AmoOp::Maxu;
    }

    // ---- Floating point ----

    fp_op_methods! {
        /// `fadd.s rd, rs1, rs2`
        fadd => FpOp::Add;
        /// `fsub.s rd, rs1, rs2`
        fsub => FpOp::Sub;
        /// `fmul.s rd, rs1, rs2`
        fmul => FpOp::Mul;
        /// `fdiv.s rd, rs1, rs2` (iterative unit)
        fdiv => FpOp::Div;
        /// `fsgnj.s rd, rs1, rs2`
        fsgnj => FpOp::Sgnj;
        /// `fsgnjn.s rd, rs1, rs2`
        fsgnjn => FpOp::Sgnjn;
        /// `fsgnjx.s rd, rs1, rs2`
        fsgnjx => FpOp::Sgnjx;
        /// `fmin.s rd, rs1, rs2`
        fmin => FpOp::Min;
        /// `fmax.s rd, rs1, rs2`
        fmax => FpOp::Max;
    }

    /// `fsqrt.s rd, rs1`
    pub fn fsqrt(&mut self, rd: Fpr, rs1: Fpr) -> &mut Self {
        self.emit(Instr::FpOp {
            op: FpOp::Sqrt,
            rd,
            rs1,
            rs2: Fpr::Ft0,
        })
    }

    /// `fmv.s rd, rs1` — pseudo for `fsgnj.s rd, rs1, rs1`.
    pub fn fmv(&mut self, rd: Fpr, rs1: Fpr) -> &mut Self {
        self.fsgnj(rd, rs1, rs1)
    }

    /// `fneg.s rd, rs1` — pseudo for `fsgnjn.s rd, rs1, rs1`.
    pub fn fneg(&mut self, rd: Fpr, rs1: Fpr) -> &mut Self {
        self.fsgnjn(rd, rs1, rs1)
    }

    /// `fabs.s rd, rs1` — pseudo for `fsgnjx.s rd, rs1, rs1`.
    pub fn fabs(&mut self, rd: Fpr, rs1: Fpr) -> &mut Self {
        self.fsgnjx(rd, rs1, rs1)
    }

    fma_methods! {
        /// `fmadd.s rd, rs1, rs2, rs3` — `rd = rs1*rs2 + rs3` (3-cycle fma)
        fmadd => FmaOp::Madd;
        /// `fmsub.s rd, rs1, rs2, rs3` — `rd = rs1*rs2 - rs3`
        fmsub => FmaOp::Msub;
        /// `fnmsub.s rd, rs1, rs2, rs3` — `rd = -(rs1*rs2) + rs3`
        fnmsub => FmaOp::Nmsub;
        /// `fnmadd.s rd, rs1, rs2, rs3` — `rd = -(rs1*rs2) - rs3`
        fnmadd => FmaOp::Nmadd;
    }

    /// `feq.s rd, rs1, rs2`
    pub fn feq(&mut self, rd: Gpr, rs1: Fpr, rs2: Fpr) -> &mut Self {
        self.emit(Instr::FpCmp {
            op: FpCmp::Eq,
            rd,
            rs1,
            rs2,
        })
    }

    /// `flt.s rd, rs1, rs2`
    pub fn flt(&mut self, rd: Gpr, rs1: Fpr, rs2: Fpr) -> &mut Self {
        self.emit(Instr::FpCmp {
            op: FpCmp::Lt,
            rd,
            rs1,
            rs2,
        })
    }

    /// `fle.s rd, rs1, rs2`
    pub fn fle(&mut self, rd: Gpr, rs1: Fpr, rs2: Fpr) -> &mut Self {
        self.emit(Instr::FpCmp {
            op: FpCmp::Le,
            rd,
            rs1,
            rs2,
        })
    }

    /// `fcvt.w.s rd, rs1`
    pub fn fcvt_w_s(&mut self, rd: Gpr, rs1: Fpr) -> &mut Self {
        self.emit(Instr::FcvtWS { rd, rs1 })
    }

    /// `fcvt.wu.s rd, rs1`
    pub fn fcvt_wu_s(&mut self, rd: Gpr, rs1: Fpr) -> &mut Self {
        self.emit(Instr::FcvtWuS { rd, rs1 })
    }

    /// `fcvt.s.w rd, rs1`
    pub fn fcvt_s_w(&mut self, rd: Fpr, rs1: Gpr) -> &mut Self {
        self.emit(Instr::FcvtSW { rd, rs1 })
    }

    /// `fcvt.s.wu rd, rs1`
    pub fn fcvt_s_wu(&mut self, rd: Fpr, rs1: Gpr) -> &mut Self {
        self.emit(Instr::FcvtSWu { rd, rs1 })
    }

    /// `fmv.x.w rd, rs1`
    pub fn fmv_x_w(&mut self, rd: Gpr, rs1: Fpr) -> &mut Self {
        self.emit(Instr::FmvXW { rd, rs1 })
    }

    /// `fmv.w.x rd, rs1`
    pub fn fmv_w_x(&mut self, rd: Fpr, rs1: Gpr) -> &mut Self {
        self.emit(Instr::FmvWX { rd, rs1 })
    }

    // ---- Pseudo-instructions ----

    /// `li rd, value` — loads an arbitrary 32-bit constant using `lui`+`addi`
    /// (one instruction when the value fits 12 bits).
    pub fn li(&mut self, rd: Gpr, value: i32) -> &mut Self {
        if (-2048..2048).contains(&value) {
            return self.addi(rd, Gpr::Zero, value);
        }
        // Split into upper 20 and lower 12 bits, compensating for the
        // sign-extension of the addi immediate.
        let lo = (value << 20) >> 20;
        let hi = value.wrapping_sub(lo) >> 12;
        // Map hi into the signed 20-bit range the encoder expects.
        let hi = (hi << 12) >> 12;
        self.lui(rd, hi);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
        self
    }

    /// `li` for an unsigned 32-bit constant (e.g. a PGAS address).
    pub fn li_u(&mut self, rd: Gpr, value: u32) -> &mut Self {
        self.li(rd, value as i32)
    }

    /// Loads an f32 constant into `rd` via an integer register.
    ///
    /// Emits `li scratch, bits; fmv.w.x rd, scratch`.
    pub fn lif(&mut self, rd: Fpr, scratch: Gpr, value: f32) -> &mut Self {
        self.li_u(scratch, value.to_bits());
        self.fmv_w_x(rd, scratch)
    }

    /// `mv rd, rs1` — pseudo for `addi rd, rs1, 0`.
    pub fn mv(&mut self, rd: Gpr, rs1: Gpr) -> &mut Self {
        self.addi(rd, rs1, 0)
    }

    /// `not rd, rs1` — pseudo for `xori rd, rs1, -1`.
    pub fn not(&mut self, rd: Gpr, rs1: Gpr) -> &mut Self {
        self.xori(rd, rs1, -1)
    }

    /// `neg rd, rs1` — pseudo for `sub rd, zero, rs1`.
    pub fn neg(&mut self, rd: Gpr, rs1: Gpr) -> &mut Self {
        self.sub(rd, Gpr::Zero, rs1)
    }

    /// `seqz rd, rs1` — pseudo for `sltiu rd, rs1, 1`.
    pub fn seqz(&mut self, rd: Gpr, rs1: Gpr) -> &mut Self {
        self.sltiu(rd, rs1, 1)
    }

    /// `snez rd, rs1` — pseudo for `sltu rd, zero, rs1`.
    pub fn snez(&mut self, rd: Gpr, rs1: Gpr) -> &mut Self {
        self.sltu(rd, Gpr::Zero, rs1)
    }

    // ---- Assembly ----

    /// Resolves all labels and encodes the program, placing the first
    /// instruction at byte address `base_pc`.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] when a label is unbound or redefined, when a
    /// resolved offset does not fit its encoding, or when an immediate
    /// operand of a directly-emitted instruction does not fit its field.
    pub fn assemble(&self, base_pc: u32) -> Result<Program, AsmError> {
        if let Some(label) = self.redefined {
            return Err(AsmError::RedefinedLabel { label });
        }
        let resolve = |target: Label, at: usize| -> Result<i64, AsmError> {
            let bound = self.labels[target.0].ok_or(AsmError::UnboundLabel { label: target.0 })?;
            Ok((bound as i64 - at as i64) * i64::from(INSTR_BYTES))
        };
        let mut instrs = Vec::with_capacity(self.items.len());
        for (at, item) in self.items.iter().enumerate() {
            let instr = match *item {
                Item::Fixed(i) => {
                    check_encodable(&i, at)?;
                    i
                }
                Item::Branch {
                    op,
                    rs1,
                    rs2,
                    target,
                } => {
                    let offset = resolve(target, at)?;
                    if !(-4096..4096).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange {
                            at_instr: at,
                            offset,
                        });
                    }
                    Instr::Branch {
                        op,
                        rs1,
                        rs2,
                        offset: offset as i32,
                    }
                }
                Item::Jal { rd, target } => {
                    let offset = resolve(target, at)?;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange {
                            at_instr: at,
                            offset,
                        });
                    }
                    Instr::Jal {
                        rd,
                        offset: offset as i32,
                    }
                }
            };
            instrs.push(instr);
        }
        Ok(Program::from_instrs(base_pc, instrs))
    }
}

/// Rejects instructions whose immediate operands cannot be encoded, so that
/// `assemble` fails loudly instead of `encode` truncating bits (release
/// builds skip the encoder's debug assertions).
fn check_encodable(instr: &Instr, at: usize) -> Result<(), AsmError> {
    let imm12 = |what, value: i32| {
        if (-2048..2048).contains(&value) {
            Ok(())
        } else {
            Err(AsmError::ImmOutOfRange {
                what,
                value: i64::from(value),
            })
        }
    };
    match *instr {
        Instr::Lui { imm, .. } | Instr::Auipc { imm, .. } => {
            if (-(1 << 19)..1 << 19).contains(&imm) {
                Ok(())
            } else {
                Err(AsmError::ImmOutOfRange {
                    what: "a 20-bit upper immediate",
                    value: i64::from(imm),
                })
            }
        }
        Instr::OpImm { op, imm, .. } => match op {
            OpImmOp::Slli | OpImmOp::Srli | OpImmOp::Srai => {
                if (0..32).contains(&imm) {
                    Ok(())
                } else {
                    Err(AsmError::ImmOutOfRange {
                        what: "a 5-bit shift amount",
                        value: i64::from(imm),
                    })
                }
            }
            _ => imm12("a 12-bit immediate", imm),
        },
        Instr::Load { offset, .. } | Instr::Flw { offset, .. } => {
            imm12("a 12-bit load offset", offset)
        }
        Instr::Store { offset, .. } | Instr::Fsw { offset, .. } => {
            imm12("a 12-bit store offset", offset)
        }
        Instr::Jalr { offset, .. } => imm12("a 12-bit jalr offset", offset),
        Instr::Branch { offset, .. } => {
            if !(-4096..4096).contains(&offset) || offset % i32::try_from(INSTR_BYTES).unwrap() != 0
            {
                Err(AsmError::BranchOutOfRange {
                    at_instr: at,
                    offset: i64::from(offset),
                })
            } else {
                Ok(())
            }
        }
        Instr::Jal { offset, .. } => {
            if !(-(1 << 20)..1 << 20).contains(&offset)
                || offset % i32::try_from(INSTR_BYTES).unwrap() != 0
            {
                Err(AsmError::JumpOutOfRange {
                    at_instr: at,
                    offset: i64::from(offset),
                })
            } else {
                Ok(())
            }
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_isa::Gpr::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        let fwd = a.new_label();
        a.nop();
        let back = a.here();
        a.beq(A0, A1, fwd); // at index 1, fwd at 3 -> offset +8
        a.j(back); // at index 2, back at 1 -> offset -4
        a.bind(fwd);
        a.ecall();
        let p = a.assemble(0).unwrap();
        assert_eq!(
            p.instr_at(4).unwrap(),
            Instr::Branch {
                op: hb_isa::BranchOp::Eq,
                rs1: A0,
                rs2: A1,
                offset: 8
            }
        );
        assert_eq!(
            p.instr_at(8).unwrap(),
            Instr::Jal {
                rd: Zero,
                offset: -4
            }
        );
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.j(l);
        assert_eq!(a.assemble(0), Err(AsmError::UnboundLabel { label: 0 }));
    }

    #[test]
    fn redefined_label_errors() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.nop();
        a.bind(l);
        assert_eq!(a.assemble(0), Err(AsmError::RedefinedLabel { label: 0 }));
    }

    #[test]
    fn branch_out_of_range_errors() {
        let mut a = Assembler::new();
        let far = a.new_label();
        a.beqz(A0, far);
        for _ in 0..2000 {
            a.nop();
        }
        a.bind(far);
        a.ecall();
        assert!(matches!(
            a.assemble(0),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn li_round_trips_any_constant() {
        // Exhaustive-ish check across tricky boundaries.
        let cases = [
            0i32,
            1,
            -1,
            2047,
            2048,
            -2048,
            -2049,
            0x7fff_ffff,
            -0x8000_0000,
            0x0000_0800,
            0x7fff_f800,
            0x1234_5678,
            -0x1234_5678,
            0x0008_0000,
            (0xdead_beef_u32) as i32,
        ];
        for &v in &cases {
            let mut a = Assembler::new();
            a.li(T0, v);
            a.ecall();
            let p = a.assemble(0).unwrap();
            // Interpret the li sequence.
            let mut reg = 0i32;
            for instr in p.instrs() {
                match *instr {
                    Instr::Lui { imm, .. } => reg = imm << 12,
                    Instr::OpImm {
                        op: OpImmOp::Addi,
                        imm,
                        ..
                    } => reg = reg.wrapping_add(imm),
                    Instr::Ecall => break,
                    other => panic!("unexpected instruction in li expansion: {other}"),
                }
            }
            assert_eq!(reg, v, "li {v:#x} materialized {reg:#x}");
        }
    }

    #[test]
    fn chaining_builds_programs() {
        let mut a = Assembler::new();
        a.li(A0, 5).li(A1, 7).add(A2, A0, A1).ecall();
        let p = a.assemble(0x1000).unwrap();
        assert_eq!(p.base(), 0x1000);
        assert_eq!(p.len(), 4);
    }
}
