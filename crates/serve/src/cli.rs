//! Shared command-line helpers for the workspace binaries.
//!
//! Every harness binary follows the same contract: malformed arguments
//! print one `error:` line plus the usage text and exit **2**; runtime
//! failures (unwritable `--out`, invalid configuration) print one `error:`
//! line and exit **1**. These helpers keep the behavior uniform — `hb-bench`
//! re-exports this module so the figure binaries share it.

use std::fmt::Display;
use std::path::Path;

/// Prints `error: <msg>` and exits 1 (runtime failure).
pub fn fail(msg: impl Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Prints `error: <msg>`, the usage text, and exits 2 (bad invocation).
pub fn usage_fail(usage: &str, msg: impl Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{usage}");
    std::process::exit(2);
}

/// The value following a flag, or a clean usage error naming the flag.
pub fn flag_value(argv: &[String], i: &mut usize, usage: &str) -> String {
    let flag = argv[*i].clone();
    *i += 1;
    argv.get(*i)
        .cloned()
        .unwrap_or_else(|| usage_fail(usage, format!("{flag} needs a value")))
}

/// Parses a flag's value, or a clean usage error naming flag and value.
pub fn parse_value<T: std::str::FromStr>(flag: &str, value: &str, usage: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| usage_fail(usage, format!("bad value {value:?} for {flag}")))
}

/// Parses a `WxH` cell-dimension value (e.g. `4x4`).
pub fn parse_cell(value: &str, usage: &str) -> hb_core::CellDim {
    let bad = || -> ! {
        usage_fail(
            usage,
            format!("bad value {value:?} for --cell (expected WxH, e.g. 4x4)"),
        )
    };
    let (w, h) = value.split_once('x').unwrap_or_else(|| bad());
    hb_core::CellDim {
        x: w.parse().unwrap_or_else(|_| bad()),
        y: h.parse().unwrap_or_else(|_| bad()),
    }
}

/// Parses a `x,y[;x,y]` disabled-tile list.
pub fn parse_disabled(value: &str, usage: &str) -> Vec<(u8, u8)> {
    let bad = || -> ! {
        usage_fail(
            usage,
            format!("bad value {value:?} for --disable (expected x,y[;x,y])"),
        )
    };
    value
        .split(';')
        .map(|part| {
            let (x, y) = part.split_once(',').unwrap_or_else(|| bad());
            (
                x.trim().parse().unwrap_or_else(|_| bad()),
                y.trim().parse().unwrap_or_else(|_| bad()),
            )
        })
        .collect()
}

/// Creates an output file (creating parent directories), or a clean exit-1
/// error naming the path — never a panic backtrace.
pub fn create_out(path: &Path) -> std::fs::File {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fail(format!("cannot create {}: {e}", dir.display()));
        }
    }
    std::fs::File::create(path)
        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_helpers_accept_good_values() {
        let cell = parse_cell("4x8", "u");
        assert_eq!((cell.x, cell.y), (4, 8));
        assert_eq!(parse_disabled("1,2;3,4", "u"), vec![(1, 2), (3, 4)]);
        assert_eq!(parse_value::<u64>("--seed", "7", "u"), 7u64);
    }
}
