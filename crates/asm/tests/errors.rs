//! Error-path coverage for the assembler: every [`AsmError`] variant, with
//! boundary offsets exercised on both sides of each encoding limit.

use hb_asm::{AsmError, Assembler};
use hb_isa::{BranchOp, Gpr::*, Instr, LoadWidth, OpImmOp, StoreWidth};

fn branch_with_offset(offset: i32) -> Result<(), AsmError> {
    let mut a = Assembler::new();
    a.emit(Instr::Branch {
        op: BranchOp::Eq,
        rs1: A0,
        rs2: A1,
        offset,
    });
    a.ecall();
    a.assemble(0).map(|_| ())
}

fn jal_with_offset(offset: i32) -> Result<(), AsmError> {
    let mut a = Assembler::new();
    a.emit(Instr::Jal { rd: Ra, offset });
    a.ecall();
    a.assemble(0).map(|_| ())
}

// ---- label errors ----

#[test]
fn unbound_label() {
    let mut a = Assembler::new();
    let l = a.new_label();
    a.j(l);
    assert_eq!(a.assemble(0), Err(AsmError::UnboundLabel { label: 0 }));
}

#[test]
fn redefined_label() {
    let mut a = Assembler::new();
    let l = a.new_label();
    a.bind(l);
    a.nop();
    a.bind(l);
    assert_eq!(a.assemble(0), Err(AsmError::RedefinedLabel { label: 0 }));
}

// ---- branch range: the B-type field holds [-4096, 4096) ----

#[test]
fn branch_offset_boundaries() {
    assert!(branch_with_offset(4092).is_ok(), "+4092 is the last slot");
    assert!(branch_with_offset(-4096).is_ok(), "-4096 is the first slot");
    assert_eq!(
        branch_with_offset(4096),
        Err(AsmError::BranchOutOfRange {
            at_instr: 0,
            offset: 4096
        })
    );
    assert_eq!(
        branch_with_offset(-4100),
        Err(AsmError::BranchOutOfRange {
            at_instr: 0,
            offset: -4100
        })
    );
}

#[test]
fn misaligned_branch_offset_is_rejected() {
    assert!(matches!(
        branch_with_offset(6),
        Err(AsmError::BranchOutOfRange { .. })
    ));
}

#[test]
fn label_branch_out_of_range() {
    let mut a = Assembler::new();
    let back = a.here();
    a.nop();
    for _ in 0..1024 {
        a.nop();
    }
    a.beq(A0, A1, back); // 1025 instructions back = -4100 bytes
    a.ecall();
    assert!(matches!(
        a.assemble(0),
        Err(AsmError::BranchOutOfRange { .. })
    ));
}

// ---- jump range: the J-type field holds [-2^20, 2^20) ----

#[test]
fn jal_offset_boundaries() {
    assert!(jal_with_offset((1 << 20) - 4).is_ok());
    assert!(jal_with_offset(-(1 << 20)).is_ok());
    assert_eq!(
        jal_with_offset(1 << 20),
        Err(AsmError::JumpOutOfRange {
            at_instr: 0,
            offset: 1 << 20
        })
    );
    assert_eq!(
        jal_with_offset(-(1 << 20) - 4),
        Err(AsmError::JumpOutOfRange {
            at_instr: 0,
            offset: -(1 << 20) - 4
        })
    );
}

#[test]
fn misaligned_jal_offset_is_rejected() {
    assert!(matches!(
        jal_with_offset(2),
        Err(AsmError::JumpOutOfRange { .. })
    ));
}

// ---- immediate fields ----

#[test]
fn addi_immediate_boundaries() {
    let ok = |imm| {
        let mut a = Assembler::new();
        a.addi(A0, A0, imm);
        a.ecall();
        a.assemble(0)
    };
    assert!(ok(2047).is_ok());
    assert!(ok(-2048).is_ok());
    assert_eq!(
        ok(2048),
        Err(AsmError::ImmOutOfRange {
            what: "a 12-bit immediate",
            value: 2048
        })
    );
    assert_eq!(
        ok(-2049),
        Err(AsmError::ImmOutOfRange {
            what: "a 12-bit immediate",
            value: -2049
        })
    );
}

#[test]
fn shift_amount_boundaries() {
    let ok = |imm| {
        let mut a = Assembler::new();
        a.slli(A0, A0, imm);
        a.ecall();
        a.assemble(0)
    };
    assert!(ok(0).is_ok());
    assert!(ok(31).is_ok());
    assert_eq!(
        ok(32),
        Err(AsmError::ImmOutOfRange {
            what: "a 5-bit shift amount",
            value: 32
        })
    );
    assert_eq!(
        ok(-1),
        Err(AsmError::ImmOutOfRange {
            what: "a 5-bit shift amount",
            value: -1
        })
    );
}

#[test]
fn load_store_offset_boundaries() {
    let load = |offset| {
        let mut a = Assembler::new();
        a.emit(Instr::Load {
            width: LoadWidth::W,
            rd: A0,
            rs1: Sp,
            offset,
        });
        a.ecall();
        a.assemble(0)
    };
    assert!(load(2047).is_ok());
    assert!(load(-2048).is_ok());
    assert!(matches!(
        load(2048),
        Err(AsmError::ImmOutOfRange {
            what: "a 12-bit load offset",
            ..
        })
    ));

    let store = |offset| {
        let mut a = Assembler::new();
        a.emit(Instr::Store {
            width: StoreWidth::W,
            rs1: Sp,
            rs2: A0,
            offset,
        });
        a.ecall();
        a.assemble(0)
    };
    assert!(store(2047).is_ok());
    assert!(matches!(
        store(-2049),
        Err(AsmError::ImmOutOfRange {
            what: "a 12-bit store offset",
            ..
        })
    ));
}

#[test]
fn jalr_offset_out_of_range() {
    let mut a = Assembler::new();
    a.jalr(Ra, A0, 4000);
    a.ecall();
    assert!(matches!(
        a.assemble(0),
        Err(AsmError::ImmOutOfRange {
            what: "a 12-bit jalr offset",
            ..
        })
    ));
}

#[test]
fn lui_immediate_out_of_range() {
    let mut a = Assembler::new();
    a.lui(A0, 1 << 19); // one past the signed 20-bit field
    a.ecall();
    assert!(matches!(
        a.assemble(0),
        Err(AsmError::ImmOutOfRange {
            what: "a 20-bit upper immediate",
            ..
        })
    ));
    let mut a = Assembler::new();
    a.lui(A0, (1 << 19) - 1);
    a.auipc(A1, -(1 << 19));
    a.ecall();
    assert!(a.assemble(0).is_ok());
}

#[test]
fn opimm_via_raw_emit_is_checked() {
    let mut a = Assembler::new();
    a.emit(Instr::OpImm {
        op: OpImmOp::Andi,
        rd: A0,
        rs1: A0,
        imm: 1 << 13,
    });
    a.ecall();
    assert!(matches!(a.assemble(0), Err(AsmError::ImmOutOfRange { .. })));
}

// ---- error display ----

#[test]
fn errors_render_usefully() {
    let text = AsmError::ImmOutOfRange {
        what: "a 12-bit immediate",
        value: 4096,
    }
    .to_string();
    assert!(text.contains("4096") && text.contains("12-bit"));
    let text = AsmError::BranchOutOfRange {
        at_instr: 7,
        offset: 8192,
    }
    .to_string();
    assert!(text.contains('7') && text.contains("8192"));
}
