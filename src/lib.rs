//! # HammerBlade-RS
//!
//! A cycle-level Rust reproduction of the HammerBlade open-source RISC-V
//! manycore (ISCA 2024). This facade crate re-exports the public API of the
//! workspace crates; see the README for an architecture overview and
//! `DESIGN.md` for the per-experiment index.
//!
//! The typical entry point is [`hb_core::Machine`]:
//!
//! ```
//! use hammerblade::core::{CellDim, MachineConfig};
//!
//! let config = MachineConfig::baseline_16x8();
//! assert_eq!(config.cell_dim, CellDim { x: 16, y: 8 });
//! ```

/// Assembler with labels, relocation and pseudo-instructions.
pub use hb_asm as asm;
/// Non-blocking, write-validate last-level cache banks.
pub use hb_cache as cache;
/// Versioned, crash-safe machine checkpoints with deterministic replay.
pub use hb_ckpt as ckpt;
/// The HammerBlade tile, Cell and Machine: the paper's core contribution.
pub use hb_core as core;
/// Per-instruction energy model.
pub use hb_energy as energy;
/// Deterministic seeded fault injection plans and the AVF outcome
/// taxonomy (`fault_campaign` classifies against these).
pub use hb_fault as fault;
/// Hierarchical-manycore (ET-style) baseline model.
pub use hb_hier as hier;
/// RV32IMAF instruction set: encode/decode, registers, disassembly.
pub use hb_isa as isa;
/// Fast functional RV32IMAF golden model (ISS) for co-simulation,
/// fast-forward and differential fuzzing.
pub use hb_iss as iss;
/// The ten-benchmark parallel suite of Table I.
pub use hb_kernels as kernels;
/// HBM2 pseudo-channel DRAM timing model.
pub use hb_mem as mem;
/// On-chip networks: mesh, Ruche, barrier and refill channels.
pub use hb_noc as noc;
/// Cycle-windowed telemetry: sampler, Chrome-trace/NDJSON export, heatmaps.
pub use hb_obs as obs;
/// Deterministic guest-code profiler: basic-block stall attribution,
/// folded-stack (flamegraph) and `perf report`-style exports.
pub use hb_prof as prof;
/// Two-sided race checking: the static phase-conflict pass cross-validated
/// against the dynamic barrier-epoch sanitizer, plus the racy fixtures.
pub use hb_race as race;
/// Deterministic xoshiro256** PRNG used by tests and workload generators.
pub use hb_rng as rng;
/// Synthetic workload generators and golden reference kernels.
pub use hb_workloads as workloads;
