//! Integration tests for the caching contract: identical resubmission is a
//! cache hit, any change to seed or configuration is a miss, a mid-campaign
//! kill (journal truncation + missing objects) resumes cleanly, and the
//! resumed campaign's report is byte-identical to an uninterrupted one.
//!
//! A counting mock executor stands in for the simulator so these tests pin
//! the *service* semantics, not simulation results (`tests/resume.rs` does
//! the real-simulation end-to-end pass).

use hb_core::MachineConfig;
use hb_serve::{
    report, run_jobs, Campaign, CancelToken, Executor, JobError, JobRecord, JobSpec, RunOpts, Store,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingExec {
    executions: AtomicUsize,
}

impl CountingExec {
    fn new() -> CountingExec {
        CountingExec {
            executions: AtomicUsize::new(0),
        }
    }

    fn count(&self) -> usize {
        self.executions.load(Ordering::Relaxed)
    }
}

impl Executor for CountingExec {
    fn run(&self, spec: &JobSpec, _store: &Store) -> Result<JobRecord, JobError> {
        self.executions.fetch_add(1, Ordering::Relaxed);
        Ok(JobRecord {
            kind: spec.kind.canonical(),
            kernel: spec.kernel.clone(),
            seed: spec.seed,
            outcome: if spec.kind == hb_serve::JobKind::Fault {
                "masked".to_owned()
            } else {
                "ok".to_owned()
            },
            site: "regfile".to_owned(),
            inj_cycle: 100 + spec.seed,
            cycles: 1000 + spec.seed,
            instrs: 400 + spec.seed,
            dram_digest: 0xD1_6E57 ^ spec.seed,
            ..JobRecord::default()
        })
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hb-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn config() -> MachineConfig {
    // Host-only fields pinned to the values `from_canonical_text` restores,
    // so manifest roundtrips compare equal under any HB_THREADS /
    // HB_EVENT_CORE environment.
    MachineConfig {
        threads: 1,
        event_core: true,
        ..MachineConfig::baseline_16x8()
    }
}

#[test]
fn identical_resubmit_hits_changed_inputs_miss() {
    let dir = tmpdir("cache");
    let store = Store::open(dir.join("store")).unwrap();
    let exec = CountingExec::new();
    let opts = RunOpts {
        threads: 2,
        ..RunOpts::default()
    };

    let campaign = Campaign::fault("c", "sgemm", &config(), 7, 10);
    let s = campaign.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached, s.failed), (11, 0, 0), "{s:?}");
    assert_eq!(exec.count(), 11);

    // Identical resubmission: zero executions, all cache hits.
    let s = campaign.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (0, 11), "{s:?}");
    assert_eq!(exec.count(), 11, "cache hits must not re-execute");

    // Shifted base seed: identity is per-job (kind, kernel, seed, plan,
    // config), so the overlapping seeds 8..=16 and the golden all hit; only
    // the genuinely new seed 17 runs.
    let reseeded = Campaign::fault("c", "sgemm", &config(), 8, 10);
    let s = reseeded.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (1, 10), "{s:?}");

    // Different machine configuration: everything misses.
    let mut cfg = config();
    cfg.ruche_factor = 0;
    let reconfigured = Campaign::fault("c", "sgemm", &cfg, 7, 10);
    let s = reconfigured.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (11, 0), "{s:?}");

    // Host thread count is NOT part of the identity.
    let mut threaded_cfg = config();
    threaded_cfg.threads = 8;
    let threaded = Campaign::fault("c", "sgemm", &threaded_cfg, 7, 10);
    let s = threaded.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (0, 11), "{s:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_campaign_resumes_to_a_byte_identical_report() {
    let dir_killed = tmpdir("killed");
    let dir_clean = tmpdir("clean");
    let campaign = Campaign::fault("avf", "sgemm", &config(), 3, 20);
    let opts = RunOpts {
        threads: 2,
        ..RunOpts::default()
    };

    // Uninterrupted twin.
    let store_clean = Store::open(dir_clean.join("store")).unwrap();
    let exec = CountingExec::new();
    let s = campaign.run(&store_clean, &exec, &opts, &CancelToken::new());
    assert_eq!(s.run, 21);
    let clean_report = report::build(&campaign, &store_clean);

    // "Killed" run: stop after 9 executions, then simulate the kill artifact
    // by truncating the journal mid-line.
    let store = Store::open(dir_killed.join("store")).unwrap();
    let exec = CountingExec::new();
    let s = campaign.run(
        &store,
        &exec,
        &RunOpts {
            max_jobs: Some(9),
            ..opts.clone()
        },
        &CancelToken::new(),
    );
    assert_eq!(s.run, 9, "{s:?}");
    assert!(s.skipped > 0, "{s:?}");
    let journal_path = dir_killed.join("store").join("journal.ndjson");
    let text = std::fs::read_to_string(&journal_path).unwrap();
    std::fs::write(&journal_path, &text[..text.len() - 7]).unwrap();

    // Resume: only the missing jobs run (the truncated journal line's object
    // was already durably stored, so it stays a cache hit).
    let s = campaign.run(&store, &exec, &opts, &CancelToken::new());
    assert_eq!((s.run, s.cached), (12, 9), "{s:?}");
    assert_eq!(exec.count(), 9 + 12);

    // The resumed report is byte-identical to the uninterrupted one.
    assert_eq!(report::build(&campaign, &store), clean_report);
    assert!(clean_report.contains("jobs: total=21 done=21 missing=0"));

    let _ = std::fs::remove_dir_all(&dir_killed);
    let _ = std::fs::remove_dir_all(&dir_clean);
}

#[test]
fn manifest_saves_and_loads_through_disk() {
    let dir = tmpdir("manifest");
    let campaign = Campaign::fault("disk", "jacobi", &config(), 11, 4);
    campaign.save(&dir).unwrap();
    let loaded = Campaign::load(&dir).unwrap();
    assert_eq!(loaded, campaign);
    assert_eq!(loaded.hashes(), campaign.hashes());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_counts_done_and_missing() {
    let dir = tmpdir("status");
    let store = Store::open(dir.join("store")).unwrap();
    let campaign = Campaign::fault("st", "sgemm", &config(), 5, 6);
    let exec = CountingExec::new();
    let s = run_jobs(
        &campaign.specs[..3],
        &store,
        &exec,
        &RunOpts::default(),
        &CancelToken::new(),
    );
    assert_eq!(s.run, 3);
    let status = campaign.status(&store);
    assert_eq!((status.done, status.missing), (3, 4));
    assert_eq!(
        status.line(),
        "status: done=3 missing=4 failed_previously=0"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
