//! Lockstep co-simulation of real benchmark kernels: the cycle-level tile
//! and the `hb-iss` golden model retire the same instruction stream, and
//! `Machine::run_cosim` checks PCs at every retire, register files at
//! quiescent points, and the full architectural state (registers, SPM,
//! DRAM) at the end. One divergence anywhere fails the run with a
//! disassembled context window.
//!
//! These run single-tile (`cell_dim` 1x1) so the instruction interleaving
//! is deterministic; the multi-tile cycle model is validated separately by
//! the kernel suites against their golden references.

use hammerblade::core::{pgas, CellDim, Machine, MachineConfig};
use hammerblade::kernels::{Bfs, Jacobi, Sgemm};
use hammerblade::rng::Rng;
use hammerblade::workloads::{gen, golden};
use std::sync::Arc;

fn single_tile_config() -> MachineConfig {
    MachineConfig {
        cell_dim: CellDim { x: 1, y: 1 },
        ..MachineConfig::baseline_16x8()
    }
}

#[test]
fn sgemm_cosim_runs_divergence_free() {
    let (m, k, n) = (4usize, 4usize, 4usize);
    let a_host = gen::dense_matrix(m, k, 0xA);
    let b_host = gen::dense_matrix(k, n, 0xB);
    let expect = golden::sgemm(m, k, n, &a_host, &b_host);

    let mut machine = Machine::new(single_tile_config());
    let cell = machine.cell_mut(0);
    let a_dev = cell.alloc((m * k * 4) as u32, 64);
    let b_dev = cell.alloc((k * n * 4) as u32, 64);
    let c_dev = cell.alloc((m * n * 4) as u32, 64);
    cell.dram_mut().write_f32_slice(a_dev, &a_host);
    cell.dram_mut().write_f32_slice(b_dev, &b_host);

    let program = Arc::new(Sgemm::program());
    machine.launch(
        0,
        &program,
        &[
            pgas::local_dram(a_dev),
            pgas::local_dram(b_dev),
            pgas::local_dram(c_dev),
            m as u32,
            k as u32,
            n as u32,
        ],
    );
    let (_, report) = machine
        .run_cosim(2_000_000)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(report.instrs > 100, "sgemm must retire real work");
    assert!(report.reg_compares > 0, "quiescent points must be checked");

    let got = machine.cell(0).dram().read_f32_slice(c_dev, m * n);
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert!(
            (g - e).abs() <= e.abs() * 1e-3 + 1e-4,
            "C[{i}]: sim {g} vs golden {e}"
        );
    }
}

#[test]
fn jacobi_cosim_runs_divergence_free() {
    // Single tile: the kernel takes the edge path (column copy-in, a
    // barrier per step, copy-out), exercising DRAM streams, SPM stores and
    // the barrier CSR under the checker. With a 1x1 grid there is no
    // interior, so the column must round-trip unchanged.
    let z = 32u32;
    let steps = 3u32;
    let mut init = vec![0f32; z as usize];
    let mut rng = Rng::seed_from_u64(0x7AC0B1);
    for v in &mut init {
        *v = rng.range_f32(-1.0, 1.0);
    }

    let mut machine = Machine::new(single_tile_config());
    let cell = machine.cell_mut(0);
    let grid = cell.alloc(z * 4, 64);
    cell.dram_mut().write_f32_slice(grid, &init);

    let program = Arc::new(Jacobi::program());
    machine.launch(0, &program, &[pgas::local_dram(grid), z, steps]);
    let (_, report) = machine
        .run_cosim(2_000_000)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(report.instrs > 100, "jacobi must retire real work");

    let got = machine.cell(0).dram().read_f32_slice(grid, z as usize);
    assert_eq!(
        got, init,
        "1x1 jacobi has no interior: grid must be unchanged"
    );
}

#[test]
fn bfs_cosim_runs_divergence_free() {
    // Road-style grid graph, one tile doing the whole frontier expansion:
    // AMOs on the work counters and bitmap, irregular loads, barriers.
    let g = gen::road_grid(4, 4);
    let n = g.rows;
    let source = 0u32;
    let expect = golden::bfs(&g, source);

    let mut machine = Machine::new(single_tile_config());
    let cell = machine.cell_mut(0);
    let alloc_u32 = |cell: &mut hammerblade::core::Cell, data: &[u32]| {
        let p = cell.alloc((data.len() * 4) as u32, 64);
        cell.dram_mut().write_u32_slice(p, data);
        p
    };
    let rp = alloc_u32(cell, &g.row_ptr);
    let ci = alloc_u32(cell, &g.col_idx);
    let mut dist_init = vec![u32::MAX; n as usize];
    dist_init[source as usize] = 0;
    let dist = alloc_u32(cell, &dist_init);
    let front_a = cell.alloc(n * 4, 64);
    let front_b = cell.alloc(n * 4, 64);
    cell.dram_mut().write_u32(front_a, source);
    let nwords = n.div_ceil(32);
    let bitmap = alloc_u32(cell, &vec![0u32; nwords as usize]);
    let q0 = alloc_u32(cell, &[0]);
    let q1 = alloc_u32(cell, &[0]);
    let fsize = alloc_u32(cell, &[1]);
    let next_count = alloc_u32(cell, &[0]);
    let done = alloc_u32(cell, &[0]);
    let tg = g.transpose();
    let tg_rp = alloc_u32(cell, &tg.row_ptr);
    let tg_ci = alloc_u32(cell, &tg.col_idx);
    let mode = alloc_u32(cell, &[0]);
    let desc = alloc_u32(
        cell,
        &[
            pgas::local_dram(rp),
            pgas::local_dram(ci),
            pgas::local_dram(dist),
            pgas::local_dram(front_a),
            pgas::local_dram(front_b),
            pgas::local_dram(bitmap),
            pgas::local_dram(q0),
            pgas::local_dram(q1),
            pgas::local_dram(fsize),
            pgas::local_dram(next_count),
            pgas::local_dram(done),
            n,
            nwords,
            pgas::local_dram(tg_rp),
            pgas::local_dram(tg_ci),
            pgas::local_dram(mode),
        ],
    );

    let program = Arc::new(Bfs::program(false));
    machine.launch(0, &program, &[pgas::local_dram(desc)]);
    let (_, report) = machine
        .run_cosim(4_000_000)
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(report.instrs > 100, "bfs must retire real work");

    let got = machine.cell(0).dram().read_u32_slice(dist, n as usize);
    assert_eq!(got, expect, "BFS distances must match the golden reference");
}
