//! Guest-code profiler: basic-block attribution of the exact retired-PC
//! and stall-cycle histograms captured by
//! [`hb_core::gprof`](hb_core::GuestProfile).
//!
//! `hb-core` owns the capture (see `MachineConfig::profile`): every tile
//! accumulates, per program phase, how many instructions retired at each
//! PC and how many stall cycles of each [`StallKind`] were spent there.
//! This crate owns the *analysis*: it maps those flat histograms onto the
//! basic-block CFG that `hb-lint` already builds for every kernel,
//! producing a ranked hot-block table and two exporters —
//!
//! - [`folded`]: folded-stack text (`kernel;phase;block count`), directly
//!   loadable by `flamegraph.pl` and Speedscope;
//! - [`summary`]: a `perf report`-style text table plus an NDJSON stream
//!   for scripting.
//!
//! Counts in both exporters are **cycles**, so a flamegraph's total width
//! is the machine's tile-cycles and stall frames nest under the block
//! that paid them. Everything here is a pure function of the captured
//! [`GuestProfile`], which is itself bit-identical across `HB_THREADS`
//! and `HB_EVENT_CORE`; the exporters iterate phases and blocks in their
//! deterministic stored order, so the rendered bytes are reproducible
//! across hosts and schedules.
//!
//! # Examples
//!
//! ```no_run
//! use hb_core::{Machine, MachineConfig};
//!
//! let (_scope, store) = hb_prof::attach();
//! let cfg = MachineConfig {
//!     profile: true,
//!     ..MachineConfig::baseline_16x8()
//! };
//! let machine = Machine::new(cfg);
//! // ... launch and run a kernel, drop the machine ...
//! drop(machine);
//! let store = store.lock().unwrap();
//! if let Some(run) = store.last() {
//!     let analysis = hb_prof::Analysis::analyze("sgemm", run);
//!     println!("{}", hb_prof::summary::report_text(&analysis, 10));
//! }
//! ```

pub mod folded;
pub mod summary;

use hb_asm::Program;
use hb_core::observe::MachineObserver;
use hb_core::{GuestProfile, Machine, MachineConfig, ObserverScope, StallKind, UNMARKED};
use hb_isa::INSTR_BYTES;
use hb_lint::cfg::Cfg;
use std::sync::{Arc, Mutex};

/// One profiled machine run: the program it executed, the folded guest
/// profile, and the machine cycle the capture closed at.
#[derive(Debug, Clone)]
pub struct ProfRun {
    /// The program launched on Cell 0 (profiles are per-image).
    pub program: Arc<Program>,
    /// The machine-wide guest profile.
    pub profile: GuestProfile,
    /// Machine cycle at capture (end of the run).
    pub cycles: u64,
}

/// Captured runs, oldest first. Shared between the caller and the
/// observer the factory hands to each profiled machine.
#[derive(Debug, Default)]
pub struct ProfStore {
    runs: Vec<ProfRun>,
}

impl ProfStore {
    /// All captured runs, in machine-drop order.
    pub fn runs(&self) -> &[ProfRun] {
        &self.runs
    }

    /// The most recent captured run, if any.
    pub fn last(&self) -> Option<&ProfRun> {
        self.runs.last()
    }
}

/// Shared handle to the captured runs.
pub type SharedProfiles = Arc<Mutex<ProfStore>>;

/// Observer that harvests the guest profile when the machine is dropped.
/// It never samples mid-run (`next_due` is `u64::MAX`); the fold in
/// `Machine::guest_profile` is owed-aware, so even a machine dropped
/// mid-kernel yields dense-identical counts.
#[derive(Debug)]
struct Harvester {
    store: SharedProfiles,
}

impl MachineObserver for Harvester {
    fn sample(&mut self, _machine: &mut Machine) {}

    fn next_due(&self) -> u64 {
        u64::MAX
    }

    fn finish(&mut self, machine: &mut Machine) {
        let (Some(profile), Some(program)) = (machine.guest_profile(), machine.launched_program(0))
        else {
            return;
        };
        self.runs_push(ProfRun {
            program,
            profile,
            cycles: machine.cycle(),
        });
    }
}

impl Harvester {
    fn runs_push(&self, run: ProfRun) {
        self.store.lock().unwrap().runs.push(run);
    }
}

/// Installs a thread-local observer factory (see
/// [`hb_core::set_observer_factory`]) and returns its scope guard plus
/// the shared run store.
///
/// Every [`Machine::new`] on this thread whose config has
/// `profile: true` then gets a harvesting observer attached — this is
/// how the profiler reaches machines built deep inside benchmark
/// harnesses without changing their signatures. The profile is read in
/// the observer's `finish`, i.e. when the machine is dropped. Drop the
/// scope to stop instrumenting.
pub fn attach() -> (ObserverScope, SharedProfiles) {
    let store: SharedProfiles = Arc::default();
    let factory_store = store.clone();
    let scope = hb_core::set_observer_factory(move |cfg: &MachineConfig| {
        cfg.profile.then(|| {
            Box::new(Harvester {
                store: factory_store.clone(),
            }) as Box<dyn MachineObserver>
        })
    });
    (scope, store)
}

/// One basic block's profile: histogram counts summed over the block's
/// instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRow {
    /// Block index in the kernel's CFG (address order, 0 = entry).
    pub block: usize,
    /// Instruction index of the block's first instruction.
    pub start: usize,
    /// One past the instruction index of the block's last instruction.
    pub end: usize,
    /// Byte address of the block's first instruction.
    pub start_pc: u32,
    /// Instructions retired inside the block (= its execute cycles).
    pub retired: u64,
    /// Stall cycles attributed to the block, by [`StallKind`].
    pub stalls: [u64; StallKind::COUNT],
}

impl BlockRow {
    /// Total stall cycles attributed to the block.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Total tile-cycles spent in the block (execute + stall).
    pub fn cycles(&self) -> u64 {
        self.retired + self.stall_cycles()
    }

    /// Stable frame/row label (`blk_0x0040`), keyed by start address so
    /// it survives re-ranking and appears verbatim in every exporter.
    pub fn label(&self) -> String {
        format!("blk_{:#06x}", self.start_pc)
    }
}

/// One phase's per-block rows, in block (address) order.
#[derive(Debug, Clone)]
pub struct PhaseRows {
    /// The `MARK` value of the phase ([`UNMARKED`] before any mark).
    pub mark: u32,
    /// Rows for every block with nonzero activity, block index ascending.
    pub rows: Vec<BlockRow>,
}

/// Human name of a phase: `main` for the pre-mark default, `phaseN` for
/// marked phases. `;` never appears, so names are folded-stack safe.
pub fn phase_name(mark: u32) -> String {
    if mark == UNMARKED {
        "main".to_owned()
    } else {
        format!("phase{mark}")
    }
}

/// A profiled run mapped onto its basic-block CFG: per-phase block rows
/// plus a phase-summed ranking. Pure function of the [`ProfRun`]; all
/// orders are deterministic (phases as stored — unmarked first, then by
/// mark; blocks by address; ranking by cycles descending with address as
/// the tiebreak).
#[derive(Debug)]
pub struct Analysis {
    /// Kernel name, used as the flamegraph root frame.
    pub kernel: String,
    /// Machine cycles at capture.
    pub cycles: u64,
    /// Total instructions retired across all phases and blocks.
    pub retired: u64,
    /// Total stall cycles across all phases and blocks.
    pub stalled: u64,
    /// Per-phase block rows.
    pub phases: Vec<PhaseRows>,
    /// Phase-summed rows, hottest (most cycles) first.
    pub ranked: Vec<BlockRow>,
    program: Arc<Program>,
}

impl Analysis {
    /// Maps `run`'s histograms onto the basic blocks of its program.
    pub fn analyze(kernel: &str, run: &ProfRun) -> Analysis {
        let cfg = Cfg::build(&run.program);
        let block_rows = |retired: &[u64], stall_at: &dyn Fn(usize, usize) -> u64| {
            let mut rows = Vec::new();
            for (bi, b) in cfg.blocks.iter().enumerate() {
                let mut row = BlockRow {
                    block: bi,
                    start: b.start,
                    end: b.end,
                    start_pc: cfg.pc_of(b.start),
                    retired: 0,
                    stalls: [0; StallKind::COUNT],
                };
                for (i, &r) in retired.iter().enumerate().take(b.end).skip(b.start) {
                    row.retired += r;
                    for k in 0..StallKind::COUNT {
                        row.stalls[k] += stall_at(i, k);
                    }
                }
                if row.cycles() > 0 {
                    rows.push(row);
                }
            }
            rows
        };

        let phases: Vec<PhaseRows> = run
            .profile
            .phases
            .iter()
            .map(|p| PhaseRows {
                mark: p.mark,
                rows: block_rows(&p.retired, &|i, k| p.stalls[i * StallKind::COUNT + k]),
            })
            .collect();

        // Phase-summed ranking.
        let mut by_block: Vec<Option<BlockRow>> = vec![None; cfg.blocks.len()];
        for ph in &phases {
            for row in &ph.rows {
                match &mut by_block[row.block] {
                    Some(acc) => {
                        acc.retired += row.retired;
                        for (dst, src) in acc.stalls.iter_mut().zip(&row.stalls) {
                            *dst += src;
                        }
                    }
                    slot => *slot = Some(row.clone()),
                }
            }
        }
        let mut ranked: Vec<BlockRow> = by_block.into_iter().flatten().collect();
        ranked.sort_by(|a, b| b.cycles().cmp(&a.cycles()).then(a.start.cmp(&b.start)));

        Analysis {
            kernel: kernel.to_owned(),
            cycles: run.cycles,
            retired: run.profile.retired_total(),
            stalled: run.profile.stall_total(),
            phases,
            ranked,
            program: run.program.clone(),
        }
    }

    /// Total tile-cycles accounted to guest code (execute + stall); the
    /// denominator for every share in the exporters.
    pub fn tile_cycles(&self) -> u64 {
        self.retired + self.stalled
    }

    /// `row`'s share of [`Analysis::tile_cycles`] in basis points
    /// (0..=10000). Integer arithmetic, so exporters stay byte-stable.
    pub fn share_bp(&self, row: &BlockRow) -> u64 {
        match self.tile_cycles() {
            0 => 0,
            total => row.cycles() * 10_000 / total,
        }
    }

    /// `row`'s share of all retired instructions, in basis points.
    pub fn retired_share_bp(&self, row: &BlockRow) -> u64 {
        match self.retired {
            0 => 0,
            total => row.retired * 10_000 / total,
        }
    }

    /// Disassembly of the block's first instruction (an anchor for
    /// reading reports without a listing at hand).
    pub fn leader_disasm(&self, row: &BlockRow) -> String {
        self.program
            .instrs()
            .get(row.start)
            .map(|i| i.to_string())
            .unwrap_or_default()
    }

    /// The `n` hottest phase-summed rows.
    pub fn top(&self, n: usize) -> &[BlockRow] {
        &self.ranked[..self.ranked.len().min(n)]
    }
}

/// Compact hot-block encoding carried by `hb-serve` job records:
/// `pc:retired:stall_cycles:share_bp` rows joined by `;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactBlock {
    /// Byte address of the block's first instruction.
    pub start_pc: u32,
    /// Instructions retired in the block.
    pub retired: u64,
    /// Stall cycles attributed to the block.
    pub stall_cycles: u64,
    /// Share of tile-cycles in basis points.
    pub share_bp: u64,
}

/// Encodes the `n` hottest blocks as a single compact field.
pub fn compact_top(a: &Analysis, n: usize) -> String {
    a.top(n)
        .iter()
        .map(|r| {
            format!(
                "{:#06x}:{}:{}:{}",
                r.start_pc,
                r.retired,
                r.stall_cycles(),
                a.share_bp(r)
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Decodes a [`compact_top`] field; malformed rows are dropped.
pub fn parse_compact(s: &str) -> Vec<CompactBlock> {
    s.split(';')
        .filter_map(|row| {
            let mut it = row.split(':');
            let pc = it.next()?.strip_prefix("0x")?;
            Some(CompactBlock {
                start_pc: u32::from_str_radix(pc, 16).ok()?,
                retired: it.next()?.parse().ok()?,
                stall_cycles: it.next()?.parse().ok()?,
                share_bp: it.next()?.parse().ok()?,
            })
        })
        .collect()
}

/// Instruction index of byte address `pc` relative to `base`.
pub fn instr_index(base: u32, pc: u32) -> usize {
    pc.wrapping_sub(base) as usize / INSTR_BYTES as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_asm::Assembler;
    use hb_core::{CellDim, HbOps};
    use hb_isa::Gpr::*;

    /// Counted loop with a barrier: block structure is
    /// `[li] [loop body] [post + barrier + ecall]` (roughly).
    fn loop_kernel() -> Arc<Program> {
        let mut a = Assembler::new();
        a.li(T0, 8);
        let top = a.here();
        a.addi(T0, T0, -1);
        a.bnez(T0, top);
        a.barrier(T6);
        a.ecall();
        Arc::new(a.assemble(0).unwrap())
    }

    fn profiled_cfg() -> MachineConfig {
        MachineConfig {
            cell_dim: CellDim { x: 2, y: 2 },
            threads: 1,
            profile: true,
            ..MachineConfig::baseline_16x8()
        }
    }

    fn run_loop_kernel() -> SharedProfiles {
        let (_scope, store) = attach();
        let mut machine = Machine::new(profiled_cfg());
        machine.launch(0, &loop_kernel(), &[]);
        machine.run(100_000).unwrap();
        drop(machine);
        store
    }

    #[test]
    fn attach_harvests_on_drop_and_analysis_ranks_the_loop() {
        let store = run_loop_kernel();
        let store = store.lock().unwrap();
        assert_eq!(store.runs().len(), 1);
        let run = store.last().unwrap();
        assert!(run.cycles > 0);
        // Each of the 4 tiles retires every instruction once, except the
        // 2-instruction loop body, which retires 8 times.
        let per_tile = (run.profile.instrs as u64 - 2) + 2 * 8;
        assert_eq!(run.profile.retired_total(), 4 * per_tile);

        let a = Analysis::analyze("loop", run);
        assert_eq!(a.retired, 4 * per_tile);
        assert_eq!(a.tile_cycles(), a.retired + a.stalled);
        // The 2-instruction loop body dominates retires (the exit block
        // may out-cycle it here: barrier skew and end-of-run `done`
        // stalls land there, and the loop is only 16 instructions).
        let body = a.ranked.iter().find(|r| r.start == 1).expect("loop body");
        assert_eq!((body.start, body.end), (1, 3));
        assert_eq!(body.retired, 4 * 16);
        assert_eq!(a.leader_disasm(body), "addi t0, t0, -1");
        assert!(a.retired_share_bp(body) > 5_000, "{a:?}");
        // Shares are basis points of the full tile-cycle pie.
        let sum: u64 = a.ranked.iter().map(|r| a.share_bp(r)).sum();
        assert!(sum <= 10_000);
    }

    #[test]
    fn factory_declines_unprofiled_machines() {
        let (_scope, store) = attach();
        let cfg = MachineConfig {
            profile: false,
            ..profiled_cfg()
        };
        drop(Machine::new(cfg));
        assert!(store.lock().unwrap().runs().is_empty());
    }

    #[test]
    fn compact_roundtrips() {
        let store = run_loop_kernel();
        let store = store.lock().unwrap();
        let a = Analysis::analyze("loop", store.last().unwrap());
        let s = compact_top(&a, 3);
        let rows = parse_compact(&s);
        assert_eq!(rows.len(), a.top(3).len());
        assert_eq!(rows[0].start_pc, a.ranked[0].start_pc);
        assert_eq!(rows[0].retired, a.ranked[0].retired);
        assert_eq!(rows[0].share_bp, a.share_bp(&a.ranked[0]));
        assert!(parse_compact("garbage").is_empty());
    }
}
