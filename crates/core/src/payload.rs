//! Packet payloads carried on the request and response networks.
//!
//! Every RISC-V remote memory operation becomes one single-flit request
//! packet; Load Packet Compression lets one packet carry up to four
//! consecutive word loads (one base address plus destination-register
//! bookkeeping kept at the issuing tile).

use hb_isa::AmoOp;
use hb_noc::Coord;

/// Identifies a network endpoint across the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Cell index.
    pub cell: u8,
    /// Node coordinate within that Cell's network grid.
    pub coord: Coord,
}

/// A remote memory operation (request-network payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Issuing endpoint (where the response must return).
    pub from: NodeId,
    /// Tile-local operation tag; echoed in the response.
    pub op_id: u32,
    /// The operation.
    pub kind: ReqKind,
}

/// Kinds of [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Load `count` consecutive naturally-aligned values of `width` bytes
    /// starting at `addr` (count > 1 only with Load Packet Compression,
    /// width 4).
    Load {
        /// Target-local byte address (SPM offset or Cell-DRAM address).
        addr: u32,
        /// Access width: 1, 2 or 4.
        width: u8,
        /// Number of consecutive words (1..=4).
        count: u8,
    },
    /// Store `width` bytes of `data` at `addr`.
    Store {
        /// Target-local byte address.
        addr: u32,
        /// Access width: 1, 2 or 4.
        width: u8,
        /// Data (low `width` bytes significant).
        data: u32,
    },
    /// Atomic read-modify-write of the word at `addr`; returns the old
    /// value.
    Amo {
        /// Target-local byte address (word aligned).
        addr: u32,
        /// The atomic operation.
        op: AmoOp,
        /// Operand.
        data: u32,
    },
}

impl ReqKind {
    /// Bytes of payload data this request reads or writes at the target.
    pub fn bytes(&self) -> u32 {
        match *self {
            ReqKind::Load { width, count, .. } => u32::from(width) * u32::from(count),
            ReqKind::Store { width, .. } => u32::from(width),
            ReqKind::Amo { .. } => 4,
        }
    }
}

/// A completion (response-network payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Tag from the originating request.
    pub op_id: u32,
    /// The completion data.
    pub kind: RespKind,
}

/// Kinds of [`Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespKind {
    /// Loaded values (`count` of them, zero-extended words).
    Load {
        /// One word per compressed load.
        data: [u32; 4],
        /// Valid entries in `data`.
        count: u8,
    },
    /// A store was performed (scoreboard credit).
    StoreAck,
    /// Old value from an atomic operation.
    AmoOld {
        /// The value before the AMO applied.
        data: u32,
    },
}

// ---- Snapshot codecs ----
//
// Fixed tag order per enum; any unknown tag on load is a clean
// `SnapError::Bad`, never a panic. Packets serialize as src, dst, payload.

use hb_mem::{SnapError, SnapReader, SnapWriter};
use hb_noc::Packet;

/// AMO operations in a stable snapshot order (tag = index).
const AMO_OPS: [AmoOp; 9] = [
    AmoOp::Swap,
    AmoOp::Add,
    AmoOp::Xor,
    AmoOp::And,
    AmoOp::Or,
    AmoOp::Min,
    AmoOp::Max,
    AmoOp::Minu,
    AmoOp::Maxu,
];

pub(crate) fn snap_save_coord(w: &mut SnapWriter, c: Coord) {
    w.u8(c.x);
    w.u8(c.y);
}

pub(crate) fn snap_load_coord(r: &mut SnapReader) -> Result<Coord, SnapError> {
    Ok(Coord {
        x: r.u8()?,
        y: r.u8()?,
    })
}

pub(crate) fn snap_save_request(w: &mut SnapWriter, req: &Request) {
    w.u8(req.from.cell);
    snap_save_coord(w, req.from.coord);
    w.u32(req.op_id);
    match req.kind {
        ReqKind::Load { addr, width, count } => {
            w.u8(0);
            w.u32(addr);
            w.u8(width);
            w.u8(count);
        }
        ReqKind::Store { addr, width, data } => {
            w.u8(1);
            w.u32(addr);
            w.u8(width);
            w.u32(data);
        }
        ReqKind::Amo { addr, op, data } => {
            w.u8(2);
            w.u32(addr);
            w.u8(AMO_OPS.iter().position(|&o| o == op).unwrap() as u8);
            w.u32(data);
        }
    }
}

pub(crate) fn snap_load_request(r: &mut SnapReader) -> Result<Request, SnapError> {
    let from = NodeId {
        cell: r.u8()?,
        coord: snap_load_coord(r)?,
    };
    let op_id = r.u32()?;
    let kind = match r.u8()? {
        0 => ReqKind::Load {
            addr: r.u32()?,
            width: r.u8()?,
            count: r.u8()?,
        },
        1 => ReqKind::Store {
            addr: r.u32()?,
            width: r.u8()?,
            data: r.u32()?,
        },
        2 => {
            let addr = r.u32()?;
            let op = *AMO_OPS
                .get(r.u8()? as usize)
                .ok_or(SnapError::Bad("unknown AMO op tag"))?;
            ReqKind::Amo {
                addr,
                op,
                data: r.u32()?,
            }
        }
        _ => return Err(SnapError::Bad("unknown request kind tag")),
    };
    Ok(Request { from, op_id, kind })
}

pub(crate) fn snap_save_response(w: &mut SnapWriter, resp: &Response) {
    w.u32(resp.op_id);
    match resp.kind {
        RespKind::Load { data, count } => {
            w.u8(0);
            for d in data {
                w.u32(d);
            }
            w.u8(count);
        }
        RespKind::StoreAck => w.u8(1),
        RespKind::AmoOld { data } => {
            w.u8(2);
            w.u32(data);
        }
    }
}

pub(crate) fn snap_load_response(r: &mut SnapReader) -> Result<Response, SnapError> {
    let op_id = r.u32()?;
    let kind = match r.u8()? {
        0 => {
            let mut data = [0u32; 4];
            for d in &mut data {
                *d = r.u32()?;
            }
            RespKind::Load {
                data,
                count: r.u8()?,
            }
        }
        1 => RespKind::StoreAck,
        2 => RespKind::AmoOld { data: r.u32()? },
        _ => return Err(SnapError::Bad("unknown response kind tag")),
    };
    Ok(Response { op_id, kind })
}

pub(crate) fn snap_save_req_packet(w: &mut SnapWriter, p: &Packet<Request>) {
    snap_save_coord(w, p.src);
    snap_save_coord(w, p.dst);
    snap_save_request(w, &p.payload);
}

pub(crate) fn snap_load_req_packet(r: &mut SnapReader) -> Result<Packet<Request>, SnapError> {
    Ok(Packet {
        src: snap_load_coord(r)?,
        dst: snap_load_coord(r)?,
        payload: snap_load_request(r)?,
    })
}

pub(crate) fn snap_save_resp_packet(w: &mut SnapWriter, p: &Packet<Response>) {
    snap_save_coord(w, p.src);
    snap_save_coord(w, p.dst);
    snap_save_response(w, &p.payload);
}

pub(crate) fn snap_load_resp_packet(r: &mut SnapReader) -> Result<Packet<Response>, SnapError> {
    Ok(Packet {
        src: snap_load_coord(r)?,
        dst: snap_load_coord(r)?,
        payload: snap_load_response(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes() {
        let load4 = ReqKind::Load {
            addr: 0,
            width: 4,
            count: 4,
        };
        assert_eq!(load4.bytes(), 16);
        let store = ReqKind::Store {
            addr: 0,
            width: 2,
            data: 7,
        };
        assert_eq!(store.bytes(), 2);
        let amo = ReqKind::Amo {
            addr: 0,
            op: AmoOp::Add,
            data: 1,
        };
        assert_eq!(amo.bytes(), 4);
    }

    #[test]
    fn payload_codecs_round_trip() {
        let reqs = [
            Request {
                from: NodeId {
                    cell: 1,
                    coord: Coord { x: 3, y: 4 },
                },
                op_id: 77,
                kind: ReqKind::Load {
                    addr: 0x1234,
                    width: 4,
                    count: 3,
                },
            },
            Request {
                from: NodeId {
                    cell: 0,
                    coord: Coord { x: 0, y: 9 },
                },
                op_id: 1,
                kind: ReqKind::Store {
                    addr: 8,
                    width: 2,
                    data: 0xbeef,
                },
            },
            Request {
                from: NodeId {
                    cell: 2,
                    coord: Coord { x: 15, y: 1 },
                },
                op_id: u32::MAX,
                kind: ReqKind::Amo {
                    addr: 64,
                    op: AmoOp::Maxu,
                    data: 5,
                },
            },
        ];
        let resps = [
            Response {
                op_id: 77,
                kind: RespKind::Load {
                    data: [1, 2, 3, 0],
                    count: 3,
                },
            },
            Response {
                op_id: 1,
                kind: RespKind::StoreAck,
            },
            Response {
                op_id: 9,
                kind: RespKind::AmoOld { data: 0xffff_0000 },
            },
        ];
        let mut w = SnapWriter::new();
        for req in &reqs {
            snap_save_request(&mut w, req);
        }
        for resp in &resps {
            snap_save_response(&mut w, resp);
        }
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        for req in &reqs {
            assert_eq!(snap_load_request(&mut r).unwrap(), *req);
        }
        for resp in &resps {
            assert_eq!(snap_load_response(&mut r).unwrap(), *resp);
        }
        r.finish().unwrap();
    }
}
