//! A hierarchical-manycore baseline model (ET-SoC-1-like), the comparator
//! of the paper's Figures 3 and 16.
//!
//! The real comparator is Esperanto's ET-SoC-1: 1088 cores in 8-core
//! *neighborhoods*, four neighborhoods per crossbar-connected *shire*,
//! shires linked by a concentrated 2-D mesh with 1024-bit channels, and
//! multi-megabyte L2 per shire. The essential architectural contrasts with
//! HammerBlade's Cellular approach are:
//!
//! 1. **Block-granularity inter-shire transfers** — a single remote word
//!    costs a whole channel block, so sparse random traffic wastes almost
//!    the entire wire budget ([`BlockChannel`], Figure 3's bottom curve).
//! 2. **Lower independent-thread density** but **much larger L2**
//!    ([`HierMachine::estimate`], the execution-time half of Figure 16).
//!
//! Two levels of model are provided: a cycle-level [`BlockChannel`]
//! simulating the wide-link transfer path, and a roofline
//! [`HierMachine::estimate`] that converts a measured kernel profile
//! (instruction and memory-access counts from the HB simulator) into
//! hierarchical-machine execution time.

use hb_rng::Rng;

/// Configuration of the hierarchical machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HierConfig {
    /// Number of shires (clusters).
    pub shires: usize,
    /// Cores per shire (8-core neighborhoods x 4).
    pub cores_per_shire: usize,
    /// L2 capacity per shire in bytes.
    pub l2_per_shire: u64,
    /// Inter-shire channel payload per cycle in bytes (1024-bit = 128 B).
    pub link_bytes_per_cycle: u32,
    /// Channels crossing the machine bisection.
    pub bisection_links: usize,
    /// DRAM bandwidth in bytes per core-clock cycle (matched to HB's
    /// HBM2 so the comparison isolates the on-chip architecture).
    pub dram_bytes_per_cycle: u32,
    /// L2 hit latency in cycles.
    pub l2_hit_latency: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Memory-level parallelism per core (outstanding misses a blocking
    /// cache hierarchy can sustain; HB's scoreboard allows 63).
    pub mlp: f64,
}

impl Default for HierConfig {
    /// An ET-class machine normalized to the paper's comparison: equal
    /// HBM2 bandwidth to the HB 32x8 configuration, ~1/4 the thread count,
    /// 4 MB L2 per shire.
    fn default() -> HierConfig {
        HierConfig {
            shires: 4,
            cores_per_shire: 32,
            l2_per_shire: 4 << 20,
            link_bytes_per_cycle: 128,
            bisection_links: 2,
            dram_bytes_per_cycle: 16,
            l2_hit_latency: 20,
            dram_latency: 100,
            mlp: 4.0,
        }
    }
}

impl HierConfig {
    /// Total hardware threads.
    pub fn total_cores(&self) -> usize {
        self.shires * self.cores_per_shire
    }

    /// Total L2 capacity.
    pub fn total_l2(&self) -> u64 {
        self.shires as u64 * self.l2_per_shire
    }
}

/// A kernel characterized by counters measured on the HB simulator,
/// re-targetable to the hierarchical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Dynamic instructions executed (all threads).
    pub instrs: u64,
    /// DRAM-space memory accesses (word granularity).
    pub mem_accesses: u64,
    /// Distinct cache lines touched (working-set size in lines).
    pub unique_lines: u64,
    /// Fraction of accesses that are sparse/random (defeat spatial
    /// locality), in `[0, 1]`.
    pub random_fraction: f64,
    /// Fraction of run time the *algorithm* spends synchronizing
    /// (barriers/phases), measured on HB and equally applicable to the
    /// hierarchical machine, in `[0, 1)`.
    pub sync_fraction: f64,
}

/// Outcome of the roofline estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierEstimate {
    /// Estimated execution cycles.
    pub cycles: u64,
    /// Which resource bound: "compute", "dram", or "noc".
    pub bottleneck: &'static str,
    /// L2 miss rate used.
    pub miss_rate: f64,
}

/// The hierarchical machine model.
#[derive(Debug, Clone, Default)]
pub struct HierMachine {
    /// Machine parameters.
    pub cfg: HierConfig,
}

impl HierMachine {
    /// Creates a machine with the given configuration.
    pub fn new(cfg: HierConfig) -> HierMachine {
        HierMachine { cfg }
    }

    /// Roofline execution-time estimate for a measured kernel profile:
    /// the max of the compute bound (1 IPC per core), the DRAM-bandwidth
    /// bound and the inter-shire NoC bound, plus a latency term for the
    /// serial fraction.
    pub fn estimate(&self, w: &WorkloadProfile) -> HierEstimate {
        let cfg = &self.cfg;
        let compute = w.instrs / cfg.total_cores() as u64;
        debug_assert!((0.0..1.0).contains(&w.sync_fraction));

        // Working set vs L2: misses are cold-only when it fits; otherwise
        // random accesses miss in proportion to the capacity shortfall.
        let working_set = w.unique_lines * 64;
        let miss_rate = if working_set <= cfg.total_l2() {
            if w.mem_accesses == 0 {
                0.0
            } else {
                (w.unique_lines as f64 / w.mem_accesses as f64).min(1.0)
            }
        } else {
            let capacity_short = 1.0 - cfg.total_l2() as f64 / working_set as f64;
            (w.random_fraction * capacity_short).clamp(0.01, 1.0)
        };
        let dram_lines = (w.mem_accesses as f64 * miss_rate) as u64;
        let dram = dram_lines * 64 / u64::from(cfg.dram_bytes_per_cycle);

        // Inter-shire traffic: random accesses cross shires with
        // probability (shires-1)/shires and move a whole link block each.
        let cross = (w.mem_accesses as f64 * w.random_fraction * (cfg.shires as f64 - 1.0)
            / cfg.shires as f64) as u64;
        let noc = cross * u64::from(cfg.link_bytes_per_cycle)
            / (cfg.bisection_links as u64 * u64::from(cfg.link_bytes_per_cycle));
        // Each crossing occupies a full block slot on a bisection link.
        let noc = noc.max(cross / cfg.bisection_links as u64);

        // Exposed memory latency: blocking cache hierarchies overlap only
        // `mlp` outstanding accesses per core (vs HB's 63-entry
        // scoreboard), so random accesses pay L2-hit latency and misses
        // pay DRAM latency with limited overlap.
        let random_accesses = w.mem_accesses as f64 * w.random_fraction;
        let latency_cycles = ((random_accesses * cfg.l2_hit_latency as f64
            + dram_lines as f64 * cfg.dram_latency as f64)
            / (cfg.total_cores() as f64 * cfg.mlp)) as u64;
        let core_time = compute + latency_cycles;

        let (mut cycles, bottleneck) = [(core_time, "compute"), (dram, "dram"), (noc, "noc")]
            .into_iter()
            .max_by_key(|&(c, _)| c)
            .unwrap();
        // Algorithmic synchronization applies to any machine running the
        // same phased algorithm.
        cycles = (cycles as f64 / (1.0 - w.sync_fraction)) as u64;
        HierEstimate {
            cycles: cycles.max(1),
            bottleneck,
            miss_rate,
        }
    }

    /// Cycles to move `bytes` of data between two shires when the data is
    /// `random` (sparse single words, each occupying a whole block slot)
    /// or dense (streamed at full width).
    pub fn transfer_cycles(&self, bytes: u64, random: bool) -> u64 {
        let link = u64::from(self.cfg.link_bytes_per_cycle);
        if random {
            // One word (4 B) of payload per block slot.
            (bytes / 4).div_ceil(self.cfg.bisection_links as u64)
        } else {
            bytes.div_ceil(link * self.cfg.bisection_links as u64)
        }
    }
}

/// Cycle-level model of one wide inter-shire channel moving a sparse word
/// set, producing the utilization-over-time trace of Figure 3's
/// hierarchical curve.
#[derive(Debug)]
pub struct BlockChannel {
    /// Channel payload bytes per cycle.
    pub block_bytes: u32,
    queue: Vec<u32>,
    cursor: usize,
    cycle: u64,
    useful_bytes: u64,
}

impl BlockChannel {
    /// Creates a channel of `block_bytes` width with a queue of word
    /// addresses to deliver.
    pub fn new(block_bytes: u32, word_addrs: Vec<u32>) -> BlockChannel {
        BlockChannel {
            block_bytes,
            queue: word_addrs,
            cursor: 0,
            cycle: 0,
            useful_bytes: 0,
        }
    }

    /// Generates `words` random word addresses in a `span`-byte window
    /// (the Figure 3 scenario: 1 MB of sparse random data).
    pub fn random_workload(words: usize, span: u32, seed: u64) -> Vec<u32> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..words).map(|_| rng.range_u32(0, span / 4) * 4).collect()
    }

    /// Whether all words have been delivered.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.queue.len()
    }

    /// Advances one cycle: transfers one block, delivering every queued
    /// word that happens to fall in the same block as the next word
    /// (consecutive in queue order). Returns the payload utilization of
    /// this cycle's block.
    pub fn tick(&mut self) -> f64 {
        self.cycle += 1;
        if self.is_done() {
            return 0.0;
        }
        let block = self.queue[self.cursor] / self.block_bytes;
        let mut carried = 0u32;
        while self.cursor < self.queue.len() && self.queue[self.cursor] / self.block_bytes == block
        {
            self.cursor += 1;
            carried += 4;
        }
        self.useful_bytes += u64::from(carried);
        f64::from(carried) / f64::from(self.block_bytes)
    }

    /// Cycles elapsed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Mean payload utilization so far.
    pub fn mean_utilization(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.useful_bytes as f64 / (self.cycle as f64 * f64::from(self.block_bytes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_random_wastes_wide_channels() {
        // The Figure 3 contrast: 1 MB of random words over a 128-byte
        // channel uses a few percent of the wires; a word-width channel
        // would use ~100%.
        let words = BlockChannel::random_workload(262_144, 1 << 20, 3);
        let mut ch = BlockChannel::new(128, words);
        while !ch.is_done() {
            ch.tick();
        }
        let util = ch.mean_utilization();
        assert!(
            util < 0.10,
            "sparse random on 1024-bit channel should be <10% useful, got {util:.3}"
        );
    }

    #[test]
    fn dense_data_uses_wide_channels_well() {
        // Sequential words fill each block completely.
        let words: Vec<u32> = (0..65_536u32).map(|i| i * 4).collect();
        let mut ch = BlockChannel::new(128, words);
        while !ch.is_done() {
            ch.tick();
        }
        assert!(ch.mean_utilization() > 0.99);
    }

    #[test]
    fn roofline_picks_compute_for_dense_kernels() {
        let m = HierMachine::default();
        let est = m.estimate(&WorkloadProfile {
            instrs: 100_000_000,
            mem_accesses: 1000,
            unique_lines: 100,
            random_fraction: 0.0,
            sync_fraction: 0.0,
        });
        assert_eq!(est.bottleneck, "compute");
    }

    #[test]
    fn roofline_picks_noc_for_sparse_kernels() {
        let m = HierMachine::default();
        let est = m.estimate(&WorkloadProfile {
            instrs: 1_000_000,
            mem_accesses: 1_000_000,
            unique_lines: 1 << 20, // 64 MB working set >> L2
            random_fraction: 1.0,
            sync_fraction: 0.0,
        });
        assert!(est.bottleneck == "noc" || est.bottleneck == "dram");
        assert!(est.miss_rate > 0.1);
    }

    #[test]
    fn large_l2_reduces_misses() {
        let small = HierMachine::new(HierConfig {
            l2_per_shire: 1 << 20,
            ..HierConfig::default()
        });
        let big = HierMachine::new(HierConfig {
            l2_per_shire: 64 << 20,
            ..HierConfig::default()
        });
        let w = WorkloadProfile {
            instrs: 10_000_000,
            mem_accesses: 5_000_000,
            unique_lines: 200_000, // 12.8 MB working set
            random_fraction: 0.8,
            sync_fraction: 0.0,
        };
        assert!(big.estimate(&w).miss_rate < small.estimate(&w).miss_rate);
    }

    #[test]
    fn random_transfer_is_slower_than_dense() {
        let m = HierMachine::default();
        let bytes = 1 << 20;
        assert!(m.transfer_cycles(bytes, true) > 10 * m.transfer_cycles(bytes, false));
    }
}
