//! Jacobi — 7-point 3-D stencil (structured-grids dwarf).
//!
//! The paper's flagship Group-SPM kernel (Figure 7): each tile owns a
//! `1 x 1 x Z` column of the grid in its scratchpad, and reads the four
//! lateral neighbor columns directly from the neighboring tiles'
//! scratchpads through Group SPM pointers — non-blocking remote loads
//! pipelined in the network. Tiles synchronize between time steps with the
//! hardware barrier.

use crate::bench::{cycle_budget, BenchStats, Benchmark, SizeClass};
use crate::util::prologue;
use hb_asm::{Assembler, Program};
use hb_core::{pgas, HbOps, Machine, MachineConfig, SimError};
use hb_isa::{Fpr::*, Gpr::*};
use hb_workloads::golden;
use rand_like::grid_values;
use std::sync::Arc;

/// Deterministic pseudo-random initial grid (no rand dependency needed
/// here; a simple LCG keeps the host and test sides identical).
mod rand_like {
    /// Fills an `nx * ny * nz` grid with values in (-1, 1).
    pub fn grid_values(n: usize) -> Vec<f32> {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }
}

/// Double-buffered column storage: buffer 0 at SPM 0, buffer 1 at 0x800.
const BUF_STRIDE: i32 = 0x800;

/// The Jacobi benchmark: `steps` iterations on a `(cell_w, cell_h, z)`
/// grid, one column per tile.
#[derive(Debug, Clone)]
pub struct Jacobi {
    /// Grid depth per tile (<= 448 to fit double buffering in 4 KB).
    pub z: u32,
    /// Time steps.
    pub steps: u32,
}

impl Default for Jacobi {
    fn default() -> Jacobi {
        Jacobi { z: 128, steps: 4 }
    }
}

impl Jacobi {
    fn sized(&self, size: SizeClass) -> Jacobi {
        match size {
            SizeClass::Tiny => Jacobi { z: 32, steps: 2 },
            SizeClass::Small => self.clone(),
            SizeClass::Large => Jacobi { z: 256, steps: 8 },
        }
    }

    /// Builds the kernel. Arguments: `a0`=grid (DRAM, layout
    /// `[(y*nx+x)*nz + z]`), `a1`=Z, `a2`=steps.
    pub fn program() -> Program {
        let mut a = Assembler::new();
        prologue(&mut a, S10, S11, T6);
        // Tile coordinates and cell shape.
        a.csr_load(S0, pgas::csr::TILE_X, T6);
        a.csr_load(S1, pgas::csr::TILE_Y, T6);
        a.csr_load(S2, pgas::csr::CELL_W, T6);
        a.csr_load(S3, pgas::csr::CELL_H, T6);

        // S4 = &grid[(y*nx + x)*nz] in DRAM.
        a.mul(S4, S1, S2);
        a.add(S4, S4, S0);
        a.mul(S4, S4, A1);
        a.slli(S4, S4, 2);
        a.add(S4, S4, A0);

        // Copy own column into buffer 0 and buffer 1.
        a.mv(T0, S4);
        a.li(T1, 0);
        a.li(T5, BUF_STRIDE);
        a.mv(T2, A1);
        let copy_in = a.here();
        a.lw(T3, T0, 0);
        a.sw(T3, T1, 0);
        a.sw(T3, T5, 0);
        a.addi(T0, T0, 4);
        a.addi(T1, T1, 4);
        a.addi(T5, T5, 4);
        a.addi(T2, T2, -1);
        a.bnez(T2, copy_in);
        a.fence();
        a.barrier(T6);

        // Interior test: 0 < x < w-1 and 0 < y < h-1.
        let edge = a.new_label();
        a.beqz(S0, edge);
        a.beqz(S1, edge);
        a.addi(T0, S2, -1);
        a.beq(S0, T0, edge);
        a.addi(T0, S3, -1);
        a.beq(S1, T0, edge);

        // Neighbor Group-SPM base EVAs for buffer 0 (registers s5..s8:
        // left, right, up, down). group_spm(x, y, 0) = (1<<30)|y<<24|x<<18.
        let spm_base = |a: &mut Assembler, dst, x_reg, y_reg| {
            a.slli(T0, y_reg, 24);
            a.slli(T1, x_reg, 18);
            a.or(T0, T0, T1);
            a.li_u(T1, 1 << 30);
            a.or(dst, T0, T1);
        };
        a.addi(T2, S0, -1);
        spm_base(&mut a, S5, T2, S1); // left  (x-1, y)
        a.addi(T2, S0, 1);
        spm_base(&mut a, S6, T2, S1); // right (x+1, y)
        a.addi(T2, S1, -1);
        spm_base(&mut a, S7, S0, T2); // up    (x, y-1)
        a.addi(T2, S1, 1);
        spm_base(&mut a, S8, S0, T2); // down  (x, y+1)

        // fs0 = 1/7.
        a.lif(Fs0, T0, 1.0 / 7.0);

        // Step loop. S9 = current buffer offset (0 / 0x800); a3 holds the
        // stride so the toggle is `s9 = a3 - s9` (xori immediates max out
        // at +/-2047).
        a.li(A3, BUF_STRIDE);
        a.li(S9, 0);
        a.mv(S2, A2); // reuse s2 as remaining-steps counter
        let step_loop = a.here();
        {
            // Pointers: t0 self cur (+4), t1..t4 neighbors cur (+4),
            // t5 out (next buffer, +4).
            a.addi(T0, S9, 4);
            a.add(T1, S5, S9);
            a.addi(T1, T1, 4);
            a.add(T2, S6, S9);
            a.addi(T2, T2, 4);
            a.add(T3, S7, S9);
            a.addi(T3, T3, 4);
            a.add(T4, S8, S9);
            a.addi(T4, T4, 4);
            a.sub(T5, A3, S9);
            a.addi(T5, T5, 4);
            // z = 1 .. Z-1.
            a.li(S3, 1);
            a.addi(S1, A1, -1); // reuse s1 as Z-1 (coords no longer needed)
            let z_loop = a.here();
            {
                a.flw(Fa3, T1, 0); // left (remote, in flight)
                a.flw(Fa4, T2, 0); // right
                a.flw(Fa5, T3, 0); // up
                a.flw(Fa6, T4, 0); // down
                a.flw(Fa0, T0, 0); // self z
                a.flw(Fa1, T0, -4); // z-1
                a.flw(Fa2, T0, 4); // z+1
                                   // Golden order: self + left + right + up + down + z-1 + z+1.
                a.fadd(Fa7, Fa0, Fa3);
                a.fadd(Fa7, Fa7, Fa4);
                a.fadd(Fa7, Fa7, Fa5);
                a.fadd(Fa7, Fa7, Fa6);
                a.fadd(Fa7, Fa7, Fa1);
                a.fadd(Fa7, Fa7, Fa2);
                a.fmul(Fa7, Fa7, Fs0);
                a.fsw(Fa7, T5, 0);
                a.addi(T0, T0, 4);
                a.addi(T1, T1, 4);
                a.addi(T2, T2, 4);
                a.addi(T3, T3, 4);
                a.addi(T4, T4, 4);
                a.addi(T5, T5, 4);
                a.addi(S3, S3, 1);
            }
            a.blt(S3, S1, z_loop);
            a.fence();
            a.barrier(T6);
            a.sub(S9, A3, S9);
            a.addi(S2, S2, -1);
        }
        a.bnez(S2, step_loop);
        let finish = a.new_label();
        a.j(finish);

        // Edge tiles only participate in barriers.
        a.bind(edge);
        a.li(A3, BUF_STRIDE);
        a.li(S9, 0);
        a.mv(S2, A2);
        let edge_loop = a.here();
        a.barrier(T6);
        a.sub(S9, A3, S9);
        a.addi(S2, S2, -1);
        a.bnez(S2, edge_loop);

        // Write the current buffer back to DRAM.
        a.bind(finish);
        a.mv(T0, S9);
        a.mv(T1, S4);
        a.mv(T2, A1);
        let copy_out = a.here();
        a.lw(T3, T0, 0);
        a.sw(T3, T1, 0);
        a.addi(T0, T0, 4);
        a.addi(T1, T1, 4);
        a.addi(T2, T2, -1);
        a.bnez(T2, copy_out);
        a.fence();
        a.ecall();
        a.assemble(0).expect("jacobi assembles")
    }

    /// Runs and validates against repeated [`golden::jacobi_step`].
    pub fn execute(&self, cfg: &MachineConfig) -> Result<BenchStats, SimError> {
        assert!(self.z <= 448, "column must fit double-buffered in SPM");
        let (nx, ny, nz) = (
            cfg.cell_dim.x as usize,
            cfg.cell_dim.y as usize,
            self.z as usize,
        );
        let init = grid_values(nx * ny * nz);
        let mut expect = init.clone();
        for _ in 0..self.steps {
            expect = golden::jacobi_step(nx, ny, nz, &expect);
        }

        let mut machine = Machine::new(cfg.clone());
        let cell = machine.cell_mut(0);
        let grid = cell.alloc((nx * ny * nz * 4) as u32, 64);
        cell.dram_mut().write_f32_slice(grid, &init);

        let program = Arc::new(Self::program());
        machine.launch(0, &program, &[pgas::local_dram(grid), self.z, self.steps]);
        let summary = machine.run(cycle_budget(cfg))?;
        machine.cell_mut(0).flush_caches();
        let got = machine.cell(0).dram().read_f32_slice(grid, expect.len());
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-4 + e.abs() * 1e-4,
                "Jacobi mismatch at {i}: sim {g} vs golden {e}"
            );
        }
        // The grid scales with the Cell, so normalize by grid size for
        // cross-configuration comparisons (weak scaling).
        let points = (nx * ny * nz) as f64;
        Ok(BenchStats::collect("Jacobi", summary.cycles, &machine)
            .with_work(points * f64::from(self.steps)))
    }
}

impl Benchmark for Jacobi {
    fn name(&self) -> &'static str {
        "Jacobi"
    }

    fn dwarf(&self) -> &'static str {
        "Structured Grids"
    }

    fn run(&self, cfg: &MachineConfig, size: SizeClass) -> Result<BenchStats, SimError> {
        self.sized(size).execute(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::CellDim;

    #[test]
    fn jacobi_validates_with_group_spm() {
        let cfg = MachineConfig {
            cell_dim: CellDim { x: 4, y: 4 },
            ..MachineConfig::baseline_16x8()
        };
        let stats = Jacobi::default().run(&cfg, SizeClass::Tiny).unwrap();
        assert!(
            stats.core.remote_requests > 0,
            "neighbor SPM reads are remote"
        );
    }
}
