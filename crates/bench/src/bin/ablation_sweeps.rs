//! Ablation sweeps over the design choices DESIGN.md calls out, beyond the
//! paper's on/off feature analysis (Figure 10):
//!
//! - Ruche factor 0..4 (the paper fixes 3; this shows the knee),
//! - remote-op scoreboard depth 1..63 (the paper fixes 63),
//! - MSHRs per cache bank 1..16 (the paper consolidates MSHRs at the LLC).
//!
//! Each sweep uses the kernel most sensitive to the resource. Every sweep
//! point is a content-addressed job executed through the `hb-serve`
//! campaign service: points shared between sweeps (e.g. the baseline
//! configuration) simulate once, and with `--out DIR` the whole sweep is
//! durable — a killed run resumes where it stopped and a repeated run is
//! pure cache hits.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hb-bench --bin ablation_sweeps -- \
//!   [--out DIR] [--threads T]
//! ```

use hb_bench::{bench_size, cli, hb_config, header, job_threads, row};
use hb_core::MachineConfig;
use hb_serve::{
    size_token, Campaign, CancelToken, JobKind, JobSpec, PlanSpec, RunOpts, SimExecutor, Store,
};
use std::path::PathBuf;

const USAGE: &str = "usage: ablation_sweeps [--out DIR] [--threads T]";

struct Sweep {
    title: &'static str,
    /// Suite benchmark name, optionally `Name@variant` (`SGEMM@blocked`).
    kernel: &'static str,
    points: Vec<(String, MachineConfig)>,
}

fn parse_args() -> Option<PathBuf> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => out = Some(PathBuf::from(cli::flag_value(&argv, &mut i, USAGE))),
            "--threads" => {
                // Consumed for arity; job_threads() already parsed it.
                let _ = cli::flag_value(&argv, &mut i, USAGE);
            }
            other => cli::usage_fail(USAGE, format!("unknown option {other:?}")),
        }
        i += 1;
    }
    out
}

fn main() {
    let out = parse_args();
    let base = hb_config();
    let size = bench_size();
    let threads = job_threads();
    println!(
        "Ablation sweeps ({}x{} Cell)\n",
        base.cell_dim.x, base.cell_dim.y
    );

    let ruche_points: Vec<(String, MachineConfig)> = [0u8, 1, 2, 3, 4]
        .into_iter()
        .map(|rf| {
            (
                format!("ruche={rf}"),
                MachineConfig {
                    ruche_factor: rf,
                    ..base.clone()
                },
            )
        })
        .collect();
    let sb_points: Vec<(String, MachineConfig)> = [1usize, 2, 4, 8, 16, 32, 63]
        .into_iter()
        .map(|n| {
            (
                format!("outstanding={n}"),
                MachineConfig {
                    max_outstanding: n,
                    ..base.clone()
                },
            )
        })
        .collect();
    let mshr_points: Vec<(String, MachineConfig)> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|n| {
            (
                format!("mshrs={n}"),
                MachineConfig {
                    cache_mshrs: n,
                    ..base.clone()
                },
            )
        })
        .collect();
    // Kernel-structure ablation: DRAM-streaming vs SPM-blocked SGEMM (the
    // paper's recommended load-blocks/compute/dump structure).
    let style_point = vec![("streamed".to_owned(), base.clone())];
    let blocked_point = vec![("spm-blocked".to_owned(), base.clone())];

    let sweeps = [
        Sweep {
            title: "-- Ruche factor (SGEMM) --",
            kernel: "SGEMM",
            points: ruche_points,
        },
        Sweep {
            title: "-- scoreboard depth (SGEMM) --",
            kernel: "SGEMM",
            points: sb_points.clone(),
        },
        Sweep {
            title: "-- scoreboard depth (PageRank) --",
            kernel: "PR",
            points: sb_points,
        },
        Sweep {
            title: "-- MSHRs per bank (SpGEMM) --",
            kernel: "SpGEMM",
            points: mshr_points,
        },
        Sweep {
            title: "-- SGEMM streamed --",
            kernel: "SGEMM",
            points: style_point,
        },
        Sweep {
            title: "-- SGEMM SPM-blocked --",
            kernel: "SGEMM@blocked",
            points: blocked_point,
        },
    ];

    // One campaign over every point; identical (kernel, config, size)
    // points across sweeps hash identically and simulate once.
    let specs: Vec<JobSpec> = sweeps
        .iter()
        .flat_map(|sweep| {
            sweep.points.iter().map(|(label, cfg)| JobSpec {
                kind: JobKind::Ablation {
                    size: size_token(size).to_owned(),
                },
                kernel: sweep.kernel.to_owned(),
                seed: 0,
                plan: PlanSpec::None,
                config: cfg.clone(),
                label: label.clone(),
            })
        })
        .collect();
    let campaign = Campaign {
        name: format!(
            "ablation sweeps {}x{} {}",
            base.cell_dim.x,
            base.cell_dim.y,
            size_token(size)
        ),
        specs,
    };

    let (dir, ephemeral) = match out {
        Some(d) => (d, false),
        None => (
            std::env::temp_dir().join(format!("ablation-sweeps-{}", std::process::id())),
            true,
        ),
    };
    if let Err(e) = campaign.save(&dir) {
        cli::fail(format!("cannot write campaign manifest: {e}"));
    }
    let store =
        Campaign::open_store(&dir).unwrap_or_else(|e| cli::fail(format!("cannot open store: {e}")));
    let summary = campaign.run(
        &store,
        &SimExecutor::new(threads),
        &RunOpts {
            threads,
            ..RunOpts::default()
        },
        &CancelToken::new(),
    );

    let cycles_of = |store: &Store, spec: &JobSpec| -> u64 {
        store
            .get(&spec.hash())
            .unwrap_or_else(|| {
                cli::fail(format!(
                    "sweep point {:?} ({}) has no stored result; see {}",
                    spec.label,
                    spec.kernel,
                    dir.join("store").join("journal.ndjson").display()
                ))
            })
            .cycles
    };

    let mut spec_iter = campaign.specs.iter();
    for sweep in &sweeps {
        println!("{}", sweep.title);
        let widths = [14usize, 12, 10];
        header(&["setting", "cycles", "speedup"], &widths);
        let cycles: Vec<u64> = sweep
            .points
            .iter()
            .map(|_| cycles_of(&store, spec_iter.next().expect("spec per point")))
            .collect();
        let base_cycles = cycles[0] as f64;
        for ((label, _), cyc) in sweep.points.iter().zip(&cycles) {
            row(
                &[
                    label.clone(),
                    cyc.to_string(),
                    format!("{:.2}x", base_cycles / *cyc as f64),
                ],
                &widths,
            );
        }
        println!();
    }

    println!("service: {}", summary.line());
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        println!("store: {}", dir.display());
    }

    println!(
        "expected knees: ruche gains saturate by factor 3 (the silicon's\n\
         choice); scoreboard depth stops paying once it covers the memory\n\
         round trip; a few MSHRs per bank suffice because they are shared by\n\
         all tiles (the paper's consolidation argument); SPM blocking trades\n\
         scratchpad capacity for DRAM traffic."
    );
}
