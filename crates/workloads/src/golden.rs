//! Host-side golden implementations of the ten benchmark kernels
//! (paper Table I). Simulator results are validated against these.

use crate::csr::CsrMatrix;

// ---------------------------------------------------------------- AES ----

/// The AES S-box.
pub const AES_SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// Expands a 16-byte AES-128 key into 11 round keys (176 bytes).
pub fn aes128_key_schedule(key: &[u8; 16]) -> [u8; 176] {
    let mut w = [0u8; 176];
    w[..16].copy_from_slice(key);
    let mut rcon: u8 = 1;
    for i in 4..44 {
        let mut t = [w[4 * i - 4], w[4 * i - 3], w[4 * i - 2], w[4 * i - 1]];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = AES_SBOX[*b as usize];
            }
            t[0] ^= rcon;
            rcon = xtime(rcon);
        }
        for j in 0..4 {
            w[4 * i + j] = w[4 * i + j - 16] ^ t[j];
        }
    }
    w
}

/// Encrypts one 16-byte block with AES-128 (ECB).
pub fn aes128_encrypt_block(block: &[u8; 16], round_keys: &[u8; 176]) -> [u8; 16] {
    let mut s = *block;
    let xor_rk = |s: &mut [u8; 16], r: usize| {
        for i in 0..16 {
            s[i] ^= round_keys[16 * r + i];
        }
    };
    xor_rk(&mut s, 0);
    for round in 1..=10 {
        // SubBytes.
        for b in &mut s {
            *b = AES_SBOX[*b as usize];
        }
        // ShiftRows (column-major state: s[col*4 + row]).
        let mut t = [0u8; 16];
        for col in 0..4 {
            for row in 0..4 {
                t[col * 4 + row] = s[((col + row) % 4) * 4 + row];
            }
        }
        s = t;
        // MixColumns (skipped in the final round).
        if round < 10 {
            for col in 0..4 {
                let c = &mut s[col * 4..col * 4 + 4];
                let (a0, a1, a2, a3) = (c[0], c[1], c[2], c[3]);
                let all = a0 ^ a1 ^ a2 ^ a3;
                c[0] = a0 ^ all ^ xtime(a0 ^ a1);
                c[1] = a1 ^ all ^ xtime(a1 ^ a2);
                c[2] = a2 ^ all ^ xtime(a2 ^ a3);
                c[3] = a3 ^ all ^ xtime(a3 ^ a0);
            }
        }
        xor_rk(&mut s, round);
    }
    s
}

/// Encrypts a multiple-of-16-byte buffer in ECB mode.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of 16.
pub fn aes128_ecb(data: &[u8], key: &[u8; 16]) -> Vec<u8> {
    assert_eq!(data.len() % 16, 0);
    let rk = aes128_key_schedule(key);
    data.chunks_exact(16)
        .flat_map(|b| aes128_encrypt_block(b.try_into().unwrap(), &rk))
        .collect()
}

// ------------------------------------------------------- Black-Scholes ----

/// `exp(x)` approximated as `(1 + x/256)^256` — eight multiplies, matching
/// what the RV32F kernel computes (no transcendental hardware). Relative
/// error is below 2% for |x| <= 3.
pub fn exp_approx(x: f32) -> f32 {
    let mut v = 1.0 + x / 256.0;
    for _ in 0..8 {
        v *= v;
    }
    v
}

/// Cumulative normal distribution via the Abramowitz-Stegun polynomial,
/// with [`exp_approx`] standing in for `exp`.
pub fn cnd(d: f32) -> f32 {
    const A: [f32; 5] = [
        0.319_381_53,
        -0.356_563_78,
        1.781_477_9,
        -1.821_255_9,
        1.330_274_4,
    ];
    let l = d.abs();
    let k = 1.0 / (1.0 + 0.231_641_9 * l);
    let poly = k * (A[0] + k * (A[1] + k * (A[2] + k * (A[3] + k * A[4]))));
    let w = 1.0 - 0.398_942_3 * exp_approx(-l * l / 2.0) * poly;
    if d < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Black-Scholes European call price with the suite's fixed rate (2%) and
/// volatility (30%).
pub fn black_scholes_call(spot: f32, strike: f32, time: f32) -> f32 {
    const R: f32 = 0.02;
    const V: f32 = 0.30;
    let sqrt_t = time.sqrt();
    // ln(s/k) via atanh-style series is overkill; the kernel precomputes
    // ln on the host? No: approximate ln(x) = 2*artanh((x-1)/(x+1)) with a
    // 3-term series — matches the kernel implementation.
    let d1 = (ln_approx(spot / strike) + (R + V * V / 2.0) * time) / (V * sqrt_t);
    let d2 = d1 - V * sqrt_t;
    spot * cnd(d1) - strike * exp_approx(-R * time) * cnd(d2)
}

/// `ln(x)` via `2 * artanh((x-1)/(x+1))`, 4-term series. Accurate to ~1e-3
/// for x in (0.05, 20); the kernel computes the same.
pub fn ln_approx(x: f32) -> f32 {
    let y = (x - 1.0) / (x + 1.0);
    let y2 = y * y;
    2.0 * y * (1.0 + y2 * (1.0 / 3.0 + y2 * (1.0 / 5.0 + y2 * (1.0 / 7.0))))
}

// ------------------------------------------------------ Smith-Waterman ----

/// Smith-Waterman local-alignment score (match +2, mismatch -1, gap -1).
pub fn smith_waterman(a: &[u8], b: &[u8]) -> i32 {
    let mut prev = vec![0i32; b.len() + 1];
    let mut best = 0;
    for &ca in a {
        let mut diag = 0;
        for (j, &cb) in b.iter().enumerate() {
            let up_left = diag;
            diag = prev[j + 1];
            let score = up_left + if ca == cb { 2 } else { -1 };
            let h = score.max(diag - 1).max(prev[j] - 1).max(0);
            prev[j + 1] = h;
            best = best.max(h);
        }
        prev[0] = 0;
    }
    best
}

// --------------------------------------------------------------- SGEMM ----

/// Dense `C = A(BxK) * B(KxN)` in row-major f32.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            for j in 0..n {
                c[i * n + j] += av * b[p * n + j];
            }
        }
    }
    c
}

// ----------------------------------------------------------------- FFT ----

/// In-place iterative radix-2 DIT FFT over interleaved (re, im) f32 pairs.
///
/// # Panics
///
/// Panics if the point count is not a power of two.
pub fn fft(data: &mut [f32]) {
    let n = data.len() / 2;
    assert!(n.is_power_of_two());
    // Bit reversal.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(2 * i, 2 * j);
            data.swap(2 * i + 1, 2 * j + 1);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f32::consts::PI / len as f32;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let (wr, wi) = ((ang * k as f32).cos(), (ang * k as f32).sin());
                let (i, j) = (start + k, start + k + len / 2);
                let (xr, xi) = (
                    data[2 * j] * wr - data[2 * j + 1] * wi,
                    data[2 * j] * wi + data[2 * j + 1] * wr,
                );
                let (ur, ui) = (data[2 * i], data[2 * i + 1]);
                data[2 * i] = ur + xr;
                data[2 * i + 1] = ui + xi;
                data[2 * j] = ur - xr;
                data[2 * j + 1] = ui - xi;
            }
        }
        len *= 2;
    }
}

// -------------------------------------------------------------- Jacobi ----

/// One 7-point Jacobi step on an `nx * ny * nz` grid (x-major, then y,
/// then z contiguous): interior points average self + 6 neighbors;
/// boundary points copy through.
pub fn jacobi_step(nx: usize, ny: usize, nz: usize, grid: &[f32]) -> Vec<f32> {
    assert_eq!(grid.len(), nx * ny * nz);
    let idx = |x: usize, y: usize, z: usize| (y * nx + x) * nz + z;
    let mut out = grid.to_vec();
    for y in 0..ny {
        for x in 0..nx {
            for z in 0..nz {
                if x == 0 || x + 1 == nx || y == 0 || y + 1 == ny || z == 0 || z + 1 == nz {
                    continue;
                }
                let sum = grid[idx(x, y, z)]
                    + grid[idx(x - 1, y, z)]
                    + grid[idx(x + 1, y, z)]
                    + grid[idx(x, y - 1, z)]
                    + grid[idx(x, y + 1, z)]
                    + grid[idx(x, y, z - 1)]
                    + grid[idx(x, y, z + 1)];
                out[idx(x, y, z)] = sum * (1.0 / 7.0);
            }
        }
    }
    out
}

// -------------------------------------------------------------- SpGEMM ----

/// Sparse `C = A * B` by Gustavson's row-by-row algorithm.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.cols, b.rows);
    let mut triples = Vec::new();
    let mut acc = vec![0.0f32; b.cols as usize];
    let mut touched = Vec::new();
    for i in 0..a.rows {
        let (acols, avals) = a.row(i);
        for (&k, &av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k);
            for (&j, &bv) in bcols.iter().zip(bvals) {
                if acc[j as usize] == 0.0 {
                    touched.push(j);
                }
                acc[j as usize] += av * bv;
            }
        }
        for &j in &touched {
            triples.push((i, j, acc[j as usize]));
            acc[j as usize] = 0.0;
        }
        touched.clear();
    }
    CsrMatrix::from_triples(a.rows, b.cols, &triples)
}

// ------------------------------------------------------------ PageRank ----

/// `iters` power iterations of PageRank with damping 0.85. Dangling mass
/// is redistributed uniformly.
pub fn pagerank(graph: &CsrMatrix, iters: u32) -> Vec<f32> {
    let n = graph.rows as usize;
    let d = 0.85f32;
    let mut pr = vec![1.0 / n as f32; n];
    let tg = graph.transpose();
    let out_deg: Vec<u32> = (0..graph.rows).map(|v| graph.degree(v)).collect();
    for _ in 0..iters {
        let dangling: f32 = (0..n).filter(|&v| out_deg[v] == 0).map(|v| pr[v]).sum();
        let base = (1.0 - d) / n as f32 + d * dangling / n as f32;
        let mut next = vec![base; n];
        for v in 0..graph.rows {
            let (in_edges, _) = tg.row(v);
            let sum: f32 = in_edges
                .iter()
                .map(|&u| pr[u as usize] / out_deg[u as usize] as f32)
                .sum();
            next[v as usize] += d * sum;
        }
        pr = next;
    }
    pr
}

// ----------------------------------------------------------------- BFS ----

/// BFS distances from `source` (`u32::MAX` = unreachable).
pub fn bfs(graph: &CsrMatrix, source: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.rows as usize];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            let (neigh, _) = graph.row(v);
            for &u in neigh {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = level;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

// ---------------------------------------------------------- Barnes-Hut ----

/// A 2-D Barnes-Hut quadtree node, stored in a flat arena so kernels can
/// traverse the same layout from DRAM.
#[derive(Debug, Clone, Copy)]
pub struct QuadNode {
    /// Center of mass (x, y).
    pub com: (f32, f32),
    /// Total mass.
    pub mass: f32,
    /// Side length of this node's region.
    pub size: f32,
    /// Child indices (`u32::MAX` = empty); leaves store a body index in
    /// `children[0]` with `is_leaf`.
    pub children: [u32; 4],
    /// Whether this node is a single body.
    pub is_leaf: bool,
}

/// A flat 2-D Barnes-Hut quadtree.
#[derive(Debug, Clone)]
pub struct QuadTree {
    /// Arena of nodes; index 0 is the root.
    pub nodes: Vec<QuadNode>,
}

const EPS2: f32 = 1e-4;

impl QuadTree {
    /// Builds a quadtree over bodies in the unit square.
    pub fn build(bodies: &[(f32, f32, f32)]) -> QuadTree {
        #[derive(Debug)]
        enum Build {
            Empty,
            Leaf(usize),
            Inner(Box<[Build; 4]>),
        }
        fn insert(
            node: &mut Build,
            bodies: &[(f32, f32, f32)],
            bi: usize,
            cx: f32,
            cy: f32,
            half: f32,
            depth: u32,
        ) {
            match node {
                Build::Empty => *node = Build::Leaf(bi),
                Build::Leaf(other) => {
                    let other = *other;
                    if depth > 32 {
                        // Coincident bodies: drop into the same leaf by
                        // merging masses at force time; keep first.
                        return;
                    }
                    *node = Build::Inner(Box::new([
                        Build::Empty,
                        Build::Empty,
                        Build::Empty,
                        Build::Empty,
                    ]));
                    insert(node, bodies, other, cx, cy, half, depth);
                    insert(node, bodies, bi, cx, cy, half, depth);
                }
                Build::Inner(children) => {
                    let (bx, by, _) = bodies[bi];
                    let q = usize::from(bx >= cx) + 2 * usize::from(by >= cy);
                    let (ncx, ncy) = (
                        cx + if bx >= cx { half / 2.0 } else { -half / 2.0 },
                        cy + if by >= cy { half / 2.0 } else { -half / 2.0 },
                    );
                    insert(
                        &mut children[q],
                        bodies,
                        bi,
                        ncx,
                        ncy,
                        half / 2.0,
                        depth + 1,
                    );
                }
            }
        }
        fn flatten(
            node: &Build,
            bodies: &[(f32, f32, f32)],
            size: f32,
            arena: &mut Vec<QuadNode>,
        ) -> u32 {
            match node {
                Build::Empty => u32::MAX,
                Build::Leaf(bi) => {
                    let (x, y, m) = bodies[*bi];
                    let id = arena.len() as u32;
                    arena.push(QuadNode {
                        com: (x, y),
                        mass: m,
                        size,
                        children: [*bi as u32, u32::MAX, u32::MAX, u32::MAX],
                        is_leaf: true,
                    });
                    id
                }
                Build::Inner(children) => {
                    let id = arena.len() as u32;
                    arena.push(QuadNode {
                        com: (0.0, 0.0),
                        mass: 0.0,
                        size,
                        children: [u32::MAX; 4],
                        is_leaf: false,
                    });
                    let mut com = (0.0f32, 0.0f32);
                    let mut mass = 0.0f32;
                    for (q, child) in children.iter().enumerate() {
                        let cid = flatten(child, bodies, size / 2.0, arena);
                        arena[id as usize].children[q] = cid;
                        if cid != u32::MAX {
                            let c = arena[cid as usize];
                            com.0 += c.com.0 * c.mass;
                            com.1 += c.com.1 * c.mass;
                            mass += c.mass;
                        }
                    }
                    arena[id as usize].com = (com.0 / mass, com.1 / mass);
                    arena[id as usize].mass = mass;
                    id
                }
            }
        }
        let mut root = Build::Empty;
        for bi in 0..bodies.len() {
            insert(&mut root, bodies, bi, 0.5, 0.5, 0.5, 0);
        }
        let mut arena = Vec::new();
        flatten(&root, bodies, 1.0, &mut arena);
        QuadTree { nodes: arena }
    }

    /// Computes the force on `body` with opening angle `theta`.
    pub fn force(&self, bodies: &[(f32, f32, f32)], body: usize, theta: f32) -> (f32, f32) {
        if self.nodes.is_empty() {
            return (0.0, 0.0);
        }
        let (px, py, pm) = bodies[body];
        let mut acc = (0.0f32, 0.0f32);
        let mut stack = vec![0u32];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            let (dx, dy) = (node.com.0 - px, node.com.1 - py);
            let dist2 = dx * dx + dy * dy + EPS2;
            if node.is_leaf {
                if node.children[0] as usize != body {
                    let inv = 1.0 / (dist2 * dist2.sqrt());
                    acc.0 += pm * node.mass * dx * inv;
                    acc.1 += pm * node.mass * dy * inv;
                }
            } else if node.size * node.size < theta * theta * dist2 {
                let inv = 1.0 / (dist2 * dist2.sqrt());
                acc.0 += pm * node.mass * dx * inv;
                acc.1 += pm * node.mass * dy * inv;
            } else {
                for &c in &node.children {
                    if c != u32::MAX {
                        stack.push(c);
                    }
                }
            }
        }
        acc
    }
}

/// Brute-force all-pairs forces (reference for the reference).
pub fn brute_forces(bodies: &[(f32, f32, f32)]) -> Vec<(f32, f32)> {
    bodies
        .iter()
        .enumerate()
        .map(|(i, &(px, py, pm))| {
            let mut acc = (0.0f32, 0.0f32);
            for (j, &(qx, qy, qm)) in bodies.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (dx, dy) = (qx - px, qy - py);
                let dist2 = dx * dx + dy * dy + EPS2;
                let inv = 1.0 / (dist2 * dist2.sqrt());
                acc.0 += pm * qm * dx * inv;
                acc.1 += pm * qm * dy * inv;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn aes_fips197_vector() {
        let key: [u8; 16] = (0..16).collect::<Vec<u8>>().try_into().unwrap();
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let rk = aes128_key_schedule(&key);
        let ct = aes128_encrypt_block(&pt, &rk);
        assert_eq!(
            ct,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn exp_approx_is_close() {
        for x in [-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0] {
            let e = exp_approx(x);
            assert!((e - x.exp()).abs() / x.exp() < 0.05, "exp({x}) = {e}");
        }
    }

    #[test]
    fn ln_approx_is_close() {
        for x in [0.2f32, 0.5, 1.0, 2.0, 5.0] {
            assert!((ln_approx(x) - x.ln()).abs() < 0.02, "ln({x})");
        }
    }

    #[test]
    fn cnd_brackets() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-3);
        assert!(cnd(3.0) > 0.99);
        assert!(cnd(-3.0) < 0.01);
    }

    #[test]
    fn black_scholes_sanity() {
        // Deep in-the-money call is worth ~spot - discounted strike.
        let p = black_scholes_call(100.0, 1.0, 1.0);
        assert!((p - (100.0 - exp_approx(-0.02))).abs() < 1.0, "price {p}");
        // Price grows with time.
        assert!(black_scholes_call(10.0, 10.0, 4.0) > black_scholes_call(10.0, 10.0, 0.5));
    }

    #[test]
    fn smith_waterman_known_cases() {
        assert_eq!(smith_waterman(b"ACGT", b"ACGT"), 8);
        assert_eq!(smith_waterman(b"AAAA", b"TTTT"), 0);
        // One gap: ACGT vs AC_GT-like.
        assert_eq!(smith_waterman(b"ACGT", b"ACT"), 5); // AC match(4) + T after gap
    }

    #[test]
    fn sgemm_matches_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let id = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(sgemm(2, 2, 2, &a, &id), a);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![0.0f32; 16];
        d[0] = 1.0;
        fft(&mut d);
        for k in 0..8 {
            assert!((d[2 * k] - 1.0).abs() < 1e-5);
            assert!(d[2 * k + 1].abs() < 1e-5);
        }
    }

    #[test]
    fn fft_parseval() {
        let mut d = gen::complex_signal(64, 9);
        let t_energy: f32 = d.iter().map(|v| v * v).sum();
        fft(&mut d);
        let f_energy: f32 = d.iter().map(|v| v * v).sum();
        assert!((f_energy / 64.0 - t_energy).abs() / t_energy < 1e-3);
    }

    #[test]
    fn jacobi_preserves_constant_field() {
        let g = vec![2.5f32; 4 * 4 * 8];
        let out = jacobi_step(4, 4, 8, &g);
        assert_eq!(out, g);
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = gen::uniform_sparse(16, 16, 3, 1);
        let b = gen::uniform_sparse(16, 16, 3, 2);
        let c = spgemm(&a, &b);
        // Check via SpMV on random vector: (A*B)x == A*(B*x).
        let x: Vec<f32> = (0..16).map(|i| i as f32 * 0.25 + 1.0).collect();
        let lhs = c.spmv(&x);
        let rhs = a.spmv(&b.spmv(&x));
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = gen::rmat(8, 2048, 5);
        let pr = pagerank(&g, 10);
        let sum: f32 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-2, "sum {sum}");
        assert!(pr.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn bfs_on_grid_is_manhattan() {
        let g = gen::road_grid(8, 8);
        let d = bfs(&g, 0);
        for y in 0..8u32 {
            for x in 0..8u32 {
                assert_eq!(d[(y * 8 + x) as usize], x + y);
            }
        }
    }

    #[test]
    fn barnes_hut_approximates_brute_force() {
        let bodies = gen::bodies(200, 11);
        let tree = QuadTree::build(&bodies);
        let brute = brute_forces(&bodies);
        let mut err = 0.0f64;
        let mut norm = 0.0f64;
        for (i, &(bx, by)) in brute.iter().enumerate() {
            let (fx, fy) = tree.force(&bodies, i, 0.5);
            err += f64::from((fx - bx).powi(2) + (fy - by).powi(2)).sqrt();
            norm += f64::from(bx * bx + by * by).sqrt();
        }
        assert!(err / norm < 0.05, "relative force error {}", err / norm);
    }

    #[test]
    fn quadtree_mass_is_conserved() {
        let bodies = gen::bodies(64, 3);
        let tree = QuadTree::build(&bodies);
        let total: f32 = bodies.iter().map(|b| b.2).sum();
        assert!((tree.nodes[0].mass - total).abs() < 1e-3);
    }
}
